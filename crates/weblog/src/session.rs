//! Sessionization: collapsing page accesses into visitor sessions.
//!
//! The study aggregates rows "into time-based 'sessions' associated with
//! the same web agent… We say a session 'ends' after 5 minutes of
//! inactivity from an entity" (paper §3.2). Entities are identified the
//! same way as the compliance analysis identifies requesters: by the
//! (ASN, IP hash, user agent) τ-tuple.

use std::collections::HashMap;

use crate::record::AccessRecord;
use crate::time::Timestamp;

/// The paper's session gap: 5 minutes of inactivity.
pub const SESSION_GAP_SECS: u64 = 5 * 60;

/// One session: a run of accesses by one entity with no gap ≥ the limit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// User agent of the entity.
    pub useragent: String,
    /// IP hash of the entity.
    pub ip_hash: u64,
    /// ASN of the entity.
    pub asn: String,
    /// First access time.
    pub start: Timestamp,
    /// Last access time.
    pub end: Timestamp,
    /// Number of page accesses collapsed into this session.
    pub accesses: u64,
    /// Total bytes transferred.
    pub bytes: u64,
    /// Distinct (sitename, path) URLs visited, in first-seen order.
    pub urls: Vec<(String, String)>,
}

impl Session {
    /// Session duration in seconds.
    pub fn duration_secs(&self) -> u64 {
        self.end.secs_since(self.start)
    }
}

/// Group records into sessions with the given inactivity gap (seconds).
///
/// Records are grouped by τ-tuple, sorted by time within each group, and
/// split whenever the inter-access gap is **at least** `gap_secs`.
/// Sessions are returned sorted by (start time, user agent) for
/// determinism.
pub fn sessionize(records: &[AccessRecord], gap_secs: u64) -> Vec<Session> {
    assert!(gap_secs > 0, "session gap must be positive");
    let mut by_entity: HashMap<(&str, u64, &str), Vec<&AccessRecord>> = HashMap::new();
    for r in records {
        by_entity.entry(r.tau_ref()).or_default().push(r);
    }

    let mut sessions = Vec::new();
    for (_, mut group) in by_entity {
        group.sort_by_key(|r| r.timestamp);
        let mut current: Option<Session> = None;
        for r in group {
            let extend = current.as_ref().is_some_and(|s| r.timestamp.secs_since(s.end) < gap_secs);
            if extend {
                let s = current.as_mut().expect("extend implies current");
                s.end = r.timestamp;
                s.accesses += 1;
                s.bytes += r.bytes;
                let url = (r.sitename.clone(), r.uri_path.clone());
                if !s.urls.contains(&url) {
                    s.urls.push(url);
                }
            } else {
                if let Some(done) = current.take() {
                    sessions.push(done);
                }
                current = Some(Session {
                    useragent: r.useragent.clone(),
                    ip_hash: r.ip_hash,
                    asn: r.asn.clone(),
                    start: r.timestamp,
                    end: r.timestamp,
                    accesses: 1,
                    bytes: r.bytes,
                    urls: vec![(r.sitename.clone(), r.uri_path.clone())],
                });
            }
        }
        if let Some(done) = current.take() {
            sessions.push(done);
        }
    }
    sessions.sort_by(|a, b| {
        (a.start, &a.useragent, a.ip_hash).cmp(&(b.start, &b.useragent, b.ip_hash))
    });
    sessions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ua: &str, ip: u64, t: u64, path: &str, bytes: u64) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes,
            referer: None,
        }
    }

    #[test]
    fn contiguous_accesses_one_session() {
        let rs =
            vec![rec("a", 1, 0, "/x", 10), rec("a", 1, 100, "/y", 20), rec("a", 1, 250, "/z", 30)];
        let ss = sessionize(&rs, SESSION_GAP_SECS);
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].accesses, 3);
        assert_eq!(ss[0].bytes, 60);
        assert_eq!(ss[0].duration_secs(), 250);
        assert_eq!(ss[0].urls.len(), 3);
    }

    #[test]
    fn gap_splits_sessions() {
        let rs = vec![
            rec("a", 1, 0, "/x", 1),
            rec("a", 1, 299, "/y", 1),
            rec("a", 1, 299 + 300, "/z", 1),
        ];
        let ss = sessionize(&rs, 300);
        // 0→299 is within gap; 299→599 is exactly the gap → split.
        assert_eq!(ss.len(), 2);
        assert_eq!(ss[0].accesses, 2);
        assert_eq!(ss[1].accesses, 1);
    }

    #[test]
    fn distinct_entities_never_merge() {
        let rs = vec![
            rec("a", 1, 0, "/x", 1),
            rec("a", 2, 10, "/x", 1), // different IP
            rec("b", 1, 20, "/x", 1), // different UA
        ];
        let ss = sessionize(&rs, 300);
        assert_eq!(ss.len(), 3);
    }

    #[test]
    fn different_asn_is_different_entity() {
        let mut r1 = rec("a", 1, 0, "/x", 1);
        let mut r2 = rec("a", 1, 10, "/x", 1);
        r1.asn = "GOOGLE".into();
        r2.asn = "AMAZON-02".into();
        let ss = sessionize(&[r1, r2], 300);
        assert_eq!(ss.len(), 2);
    }

    #[test]
    fn unsorted_input_handled() {
        let rs =
            vec![rec("a", 1, 200, "/y", 1), rec("a", 1, 0, "/x", 1), rec("a", 1, 100, "/z", 1)];
        let ss = sessionize(&rs, 300);
        assert_eq!(ss.len(), 1);
        assert_eq!(ss[0].start, Timestamp::from_unix(0));
        assert_eq!(ss[0].end, Timestamp::from_unix(200));
    }

    #[test]
    fn duplicate_urls_deduplicated() {
        let rs = vec![rec("a", 1, 0, "/x", 1), rec("a", 1, 10, "/x", 1), rec("a", 1, 20, "/x", 1)];
        let ss = sessionize(&rs, 300);
        assert_eq!(ss[0].accesses, 3);
        assert_eq!(ss[0].urls.len(), 1);
    }

    #[test]
    fn output_is_deterministic() {
        let rs = vec![rec("b", 2, 0, "/x", 1), rec("a", 1, 0, "/x", 1), rec("c", 3, 50, "/x", 1)];
        let a = sessionize(&rs, 300);
        let b = sessionize(&rs, 300);
        assert_eq!(a, b);
        assert!(a[0].useragent <= a[1].useragent || a[0].start < a[1].start);
    }

    #[test]
    fn empty_input() {
        assert!(sessionize(&[], 300).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gap_panics() {
        let _ = sessionize(&[], 0);
    }

    #[test]
    fn paper_gap_constant() {
        assert_eq!(SESSION_GAP_SECS, 300);
    }
}

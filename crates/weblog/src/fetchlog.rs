//! Fetch-event rows: the monitoring daemon's native log schema.
//!
//! A *fetch event* is one attempt to retrieve a site's `/robots.txt`:
//! the monitoring daemon's per-(bot, site) agents emit one row per
//! attempt, carrying the redirect-resolved HTTP status (`0` denotes a
//! transport-level failure that never produced a status) and the body
//! size. The schema is deliberately identical to [`AccessRecord`] rows —
//! the path is always `/robots.txt` — so every existing consumer (the
//! §5.1 re-check profiles, the grouping views, the CSV/JSONL codecs)
//! reads monitor logs unchanged.
//!
//! [`AccessRecord`]: crate::record::AccessRecord

use crate::intern::Sym;
use crate::table::{LogTable, RecordRow};
use crate::time::Timestamp;

/// Status recorded for a fetch attempt that failed at the transport
/// level (DNS, TCP, TLS) — no HTTP status ever existed.
pub const STATUS_TRANSPORT_FAILURE: u16 = 0;

/// An append-only [`LogTable`] of robots.txt fetch events.
///
/// The `/robots.txt` path symbol is interned once at construction;
/// callers intern their per-agent strings (user agent, ASN, sitename)
/// up front and emit rows symbol-to-symbol, so the hot path never
/// touches a string.
#[derive(Debug, Clone)]
pub struct FetchEventLog {
    table: LogTable,
    robots: Sym,
}

impl Default for FetchEventLog {
    fn default() -> Self {
        FetchEventLog::new()
    }
}

impl FetchEventLog {
    /// An empty fetch-event log.
    pub fn new() -> FetchEventLog {
        let mut table = LogTable::new();
        let robots = table.intern("/robots.txt");
        FetchEventLog { table, robots }
    }

    /// Intern a string into the log's symbol space (agents do this once
    /// per fixed field, not once per event).
    pub fn intern(&mut self, s: &str) -> Sym {
        self.table.intern(s)
    }

    /// Append one fetch event. `status` is the redirect-resolved HTTP
    /// status ([`STATUS_TRANSPORT_FAILURE`] when the transport failed);
    /// `bytes` is the body size served (0 for error outcomes).
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        useragent: Sym,
        asn: Sym,
        sitename: Sym,
        ip_hash: u64,
        status: u16,
        bytes: u64,
        at: Timestamp,
    ) {
        self.table.push_row(RecordRow {
            useragent,
            asn,
            sitename,
            uri_path: self.robots,
            referer: None,
            timestamp: at,
            ip_hash,
            bytes,
            status,
        });
    }

    /// Number of events logged.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no events were logged.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The underlying table.
    pub fn table(&self) -> &LogTable {
        &self.table
    }

    /// Consume the log, yielding its table.
    pub fn into_table(self) -> LogTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_robots_fetches() {
        let mut log = FetchEventLog::new();
        let ua = log.intern("Mozilla/5.0 (compatible; GPTBot/1.2)");
        let asn = log.intern("MICROSOFT-CORP");
        let site = log.intern("site-00.example.edu");
        log.push(ua, asn, site, 77, 200, 430, Timestamp::from_unix(1_000));
        log.push(ua, asn, site, 77, 503, 0, Timestamp::from_unix(2_000));
        log.push(ua, asn, site, 77, STATUS_TRANSPORT_FAILURE, 0, Timestamp::from_unix(3_000));
        assert_eq!(log.len(), 3);
        let table = log.into_table();
        for row in table.rows() {
            assert!(table.is_robots_fetch(row));
        }
        let records = table.to_records();
        assert_eq!(records[0].status, 200);
        assert_eq!(records[1].status, 503);
        assert_eq!(records[2].status, 0);
        assert!(records.iter().all(super::super::record::AccessRecord::is_robots_fetch));
    }

    #[test]
    fn feeds_recheck_views() {
        let mut log = FetchEventLog::new();
        let ua = log.intern("botA/1.0");
        let asn = log.intern("ASN-A");
        let site = log.intern("s");
        for t in [10u64, 30, 20] {
            log.push(ua, asn, site, 1, 200, 10, Timestamp::from_unix(t));
        }
        let mut table = log.into_table();
        table.sort_canonical();
        let checks = table.robots_checks_by_useragent();
        assert_eq!(checks["botA/1.0"], vec![10, 20, 30]);
    }

    #[test]
    fn empty_log() {
        let log = FetchEventLog::new();
        assert!(log.is_empty());
        assert_eq!(log.table().len(), 0);
    }
}

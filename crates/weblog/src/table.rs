//! The interned, column-friendly log table.
//!
//! [`LogTable`] owns a [`StringInterner`] plus a vector of compact
//! [`RecordRow`]s: every string field of [`AccessRecord`] is replaced by
//! a 4-byte [`Sym`], shrinking a row to 48 bytes and collapsing the
//! dataset's repeated strings (user agents, ASNs, sitenames, paths) to
//! one copy each. At paper volume this cuts the resident footprint of
//! the generated dataset by roughly 6× versus `Vec<AccessRecord>`.
//!
//! The table is the native representation of the simnet generator and
//! the core analysis pipeline; [`AccessRecord`] views are materialized
//! on demand ([`LogTable::record`], [`LogTable::iter_records`]) so every
//! existing record-slice API keeps working.

use std::collections::BTreeMap;

use crate::intern::{StringInterner, Sym};
use crate::record::AccessRecord;
use crate::session::Session;
use crate::time::Timestamp;

/// One access, with all strings interned. 48 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRow {
    /// Interned `User-Agent` header.
    pub useragent: Sym,
    /// Interned ASN name.
    pub asn: Sym,
    /// Interned sitename.
    pub sitename: Sym,
    /// Interned URI path.
    pub uri_path: Sym,
    /// Interned referer, if any.
    pub referer: Option<Sym>,
    /// Time of the request.
    pub timestamp: Timestamp,
    /// One-way keyed hash of the visitor IP.
    pub ip_hash: u64,
    /// Bytes transmitted by the server.
    pub bytes: u64,
    /// HTTP status returned.
    pub status: u16,
}

/// An in-progress session during row sessionization:
/// (start, end, accesses, bytes, urls as symbol pairs).
type PendingSession = (Timestamp, Timestamp, u64, u64, Vec<(Sym, Sym)>);

/// A resolved τ key: (ASN, IP hash, raw user agent).
pub type TauKey<'t> = (&'t str, u64, &'t str);

/// One τ group: its resolved key plus the rows it contains.
pub type TauGroup<'t> = (TauKey<'t>, Vec<&'t RecordRow>);

/// An interner plus its rows: the whole dataset in compact form.
#[derive(Debug, Clone, Default)]
pub struct LogTable {
    interner: StringInterner,
    rows: Vec<RecordRow>,
}

impl LogTable {
    /// An empty table.
    pub fn new() -> LogTable {
        LogTable::default()
    }

    /// An empty table with row capacity `rows` and string capacity
    /// `strings`.
    pub fn with_capacity(rows: usize, strings: usize) -> LogTable {
        LogTable {
            interner: StringInterner::with_capacity(strings),
            rows: Vec::with_capacity(rows),
        }
    }

    /// Build a table from materialized records.
    pub fn from_records(records: &[AccessRecord]) -> LogTable {
        let mut table = LogTable::with_capacity(records.len(), 64);
        for r in records {
            table.push_record(r);
        }
        table
    }

    /// Reassemble a table from an interner and rows previously split by
    /// [`LogTable::into_parts`] (or built against a clone of `interner`).
    /// Every symbol in `rows` must come from `interner`.
    pub fn from_parts(interner: StringInterner, rows: Vec<RecordRow>) -> LogTable {
        if let Some(row) = rows.first() {
            debug_assert!(row.useragent.index() < interner.len());
        }
        LogTable { interner, rows }
    }

    /// Split the table into its interner and rows, e.g. to sort or spill
    /// the rows while keeping the symbol space alive.
    pub fn into_parts(self) -> (StringInterner, Vec<RecordRow>) {
        (self.interner, self.rows)
    }

    /// The interner.
    pub fn interner(&self) -> &StringInterner {
        &self.interner
    }

    /// Intern a string into this table's symbol space.
    pub fn intern(&mut self, s: &str) -> Sym {
        self.interner.intern(s)
    }

    /// Resolve a symbol of this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        self.interner.resolve(sym)
    }

    /// The rows.
    pub fn rows(&self) -> &[RecordRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row whose symbols are from **this** table's interner.
    pub fn push_row(&mut self, row: RecordRow) {
        debug_assert!(row.useragent.index() < self.interner.len());
        self.rows.push(row);
    }

    /// Intern a record's strings and append it as a row.
    pub fn push_record(&mut self, r: &AccessRecord) {
        let row = RecordRow {
            useragent: self.interner.intern(&r.useragent),
            asn: self.interner.intern(&r.asn),
            sitename: self.interner.intern(&r.sitename),
            uri_path: self.interner.intern(&r.uri_path),
            referer: r.referer.as_deref().map(|s| self.interner.intern(s)),
            timestamp: r.timestamp,
            ip_hash: r.ip_hash,
            bytes: r.bytes,
            status: r.status,
        };
        self.rows.push(row);
    }

    /// Materialize one row as an [`AccessRecord`].
    pub fn materialize(&self, row: &RecordRow) -> AccessRecord {
        AccessRecord {
            useragent: self.resolve(row.useragent).to_string(),
            timestamp: row.timestamp,
            ip_hash: row.ip_hash,
            asn: self.resolve(row.asn).to_string(),
            sitename: self.resolve(row.sitename).to_string(),
            uri_path: self.resolve(row.uri_path).to_string(),
            status: row.status,
            bytes: row.bytes,
            referer: row.referer.map(|s| self.resolve(s).to_string()),
        }
    }

    /// Materialize the row at `index`.
    pub fn record(&self, index: usize) -> AccessRecord {
        self.materialize(&self.rows[index])
    }

    /// Iterate materialized [`AccessRecord`] views in row order.
    pub fn iter_records(&self) -> impl Iterator<Item = AccessRecord> + '_ {
        self.rows.iter().map(|row| self.materialize(row))
    }

    /// Materialize the whole table (the compatibility path).
    pub fn to_records(&self) -> Vec<AccessRecord> {
        self.iter_records().collect()
    }

    /// Whether a row's path is exactly `/robots.txt`
    /// (cf. [`AccessRecord::is_robots_fetch`]).
    pub fn is_robots_fetch(&self, row: &RecordRow) -> bool {
        self.resolve(row.uri_path) == "/robots.txt"
    }

    /// Absorb another table: remap its symbols into this interner and
    /// append its rows in order. Used to merge per-shard tables from
    /// parallel generation workers.
    pub fn absorb(&mut self, other: &LogTable) {
        // Remap each of the shard's symbols once, not once per row.
        let remap: Vec<Sym> = other.interner.iter().map(|(_, s)| self.interner.intern(s)).collect();
        let m = |sym: Sym| remap[sym.index()];
        self.rows.reserve(other.rows.len());
        for row in &other.rows {
            self.rows.push(RecordRow {
                useragent: m(row.useragent),
                asn: m(row.asn),
                sitename: m(row.sitename),
                uri_path: m(row.uri_path),
                referer: row.referer.map(m),
                ..*row
            });
        }
    }

    /// Stable-sort rows by `(timestamp, useragent, ip_hash, uri_path)`
    /// with string fields compared lexicographically — the generator's
    /// canonical output order. Implemented over precomputed symbol ranks
    /// so the sort never touches a string.
    pub fn sort_canonical(&mut self) {
        let ranks = self.interner.ranks();
        self.rows.sort_by_key(|r| {
            (r.timestamp, ranks[r.useragent.index()], r.ip_hash, ranks[r.uri_path.index()])
        });
    }

    /// Group rows by the study's stratification triple τ = (ASN, IP
    /// hash, **raw** user agent); the normative definition of τ lives
    /// next to the crawl-delay metric in `botscope-core::metrics`.
    /// Groups come back sorted lexicographically by resolved (ASN, IP
    /// hash, user agent), so iteration order is deterministic and
    /// independent of symbol interning order; within a group, rows keep
    /// table row order (ascending in time once the table is
    /// canonically sorted).
    pub fn by_tau(&self) -> Vec<TauGroup<'_>> {
        use std::collections::HashMap;
        let mut map: HashMap<(Sym, u64, Sym), Vec<&RecordRow>> = HashMap::new();
        for row in &self.rows {
            map.entry((row.asn, row.ip_hash, row.useragent)).or_default().push(row);
        }
        let mut groups: Vec<TauGroup<'_>> = map
            .into_iter()
            .map(|((asn, ip, ua), rows)| ((self.resolve(asn), ip, self.resolve(ua)), rows))
            .collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        groups
    }

    /// Group rows by raw user-agent string, sorted by agent name; within
    /// a group, rows keep table row order.
    pub fn by_useragent(&self) -> Vec<(&str, Vec<&RecordRow>)> {
        use std::collections::HashMap;
        let mut map: HashMap<Sym, Vec<&RecordRow>> = HashMap::new();
        for row in &self.rows {
            map.entry(row.useragent).or_default().push(row);
        }
        let mut groups: Vec<(&str, Vec<&RecordRow>)> =
            map.into_iter().map(|(ua, rows)| (self.resolve(ua), rows)).collect();
        groups.sort_by(|a, b| a.0.cmp(b.0));
        groups
    }

    /// The robots.txt fetch times (unix secs) per raw user agent, in
    /// table row order (ascending in time once the table is canonically
    /// sorted). Agents that never fetched `/robots.txt` are absent.
    pub fn robots_checks_by_useragent(&self) -> BTreeMap<&str, Vec<u64>> {
        use std::collections::HashMap;
        let Some(robots) = self.interner.get("/robots.txt") else {
            return BTreeMap::new();
        };
        let mut map: HashMap<Sym, Vec<u64>> = HashMap::new();
        for row in &self.rows {
            if row.uri_path == robots {
                map.entry(row.useragent).or_default().push(row.timestamp.unix());
            }
        }
        map.into_iter().map(|(ua, times)| (self.resolve(ua), times)).collect()
    }

    /// Group rows into [`Session`]s with the given inactivity gap, the
    /// row-native equivalent of [`crate::session::sessionize`]. Entities
    /// are τ-tuples of interned symbols, so grouping is integer-keyed;
    /// strings are resolved once per produced session.
    pub fn sessionize(&self, gap_secs: u64) -> Vec<Session> {
        self.sessionize_rows(self.rows.iter(), gap_secs)
    }

    /// [`LogTable::sessionize`] over a row subset (rows must belong to
    /// this table).
    pub fn sessionize_rows<'t>(
        &'t self,
        rows: impl IntoIterator<Item = &'t RecordRow>,
        gap_secs: u64,
    ) -> Vec<Session> {
        assert!(gap_secs > 0, "session gap must be positive");
        use std::collections::HashMap;
        let mut by_entity: HashMap<(Sym, u64, Sym), Vec<&RecordRow>> = HashMap::new();
        for row in rows {
            by_entity.entry((row.useragent, row.ip_hash, row.asn)).or_default().push(row);
        }

        let mut sessions = Vec::new();
        for ((ua, ip, asn), mut group) in by_entity {
            group.sort_by_key(|r| r.timestamp);
            let mut current: Option<PendingSession> = None;
            for r in group {
                let extend =
                    current.as_ref().is_some_and(|s| r.timestamp.secs_since(s.1) < gap_secs);
                if let (true, Some(s)) = (extend, current.as_mut()) {
                    s.1 = r.timestamp;
                    s.2 += 1;
                    s.3 += r.bytes;
                    let url = (r.sitename, r.uri_path);
                    if !s.4.contains(&url) {
                        s.4.push(url);
                    }
                } else {
                    if let Some(done) = current.take() {
                        sessions.push(self.finish_session(ua, ip, asn, done));
                    }
                    current = Some((
                        r.timestamp,
                        r.timestamp,
                        1,
                        r.bytes,
                        vec![(r.sitename, r.uri_path)],
                    ));
                }
            }
            if let Some(done) = current.take() {
                sessions.push(self.finish_session(ua, ip, asn, done));
            }
        }
        sessions.sort_by(|a, b| {
            (a.start, &a.useragent, a.ip_hash).cmp(&(b.start, &b.useragent, b.ip_hash))
        });
        sessions
    }

    /// Count sessions over a row subset without materializing them
    /// (the hot path for per-phase traffic tables).
    pub fn count_sessions<'t>(
        &'t self,
        rows: impl IntoIterator<Item = &'t RecordRow>,
        gap_secs: u64,
    ) -> usize {
        use std::collections::HashMap;
        let mut by_entity: HashMap<(Sym, u64, Sym), Vec<u64>> = HashMap::new();
        for row in rows {
            by_entity
                .entry((row.useragent, row.ip_hash, row.asn))
                .or_default()
                .push(row.timestamp.unix());
        }
        count_entity_sessions(by_entity, gap_secs)
    }

    fn finish_session(
        &self,
        ua: Sym,
        ip: u64,
        asn: Sym,
        (start, end, accesses, bytes, urls): PendingSession,
    ) -> Session {
        Session {
            useragent: self.resolve(ua).to_string(),
            ip_hash: ip,
            asn: self.resolve(asn).to_string(),
            start,
            end,
            accesses,
            bytes,
            urls: urls
                .into_iter()
                .map(|(s, p)| (self.resolve(s).to_string(), self.resolve(p).to_string()))
                .collect(),
        }
    }

    /// Approximate heap footprint in bytes: rows plus interner strings.
    /// The `Vec<AccessRecord>` equivalent is reported by
    /// [`records_heap_bytes`]; genbench prints both.
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<RecordRow>() + self.interner.heap_bytes()
    }
}

/// Count sessions given per-τ-entity access times: one session per
/// entity plus one per inter-access gap of at least `gap_secs`. The
/// single definition of the session-split rule for row-native counting
/// (shared by [`LogTable::count_sessions`] and `DatasetSummary`).
pub(crate) fn count_entity_sessions(
    mut by_entity: std::collections::HashMap<(Sym, u64, Sym), Vec<u64>>,
    gap_secs: u64,
) -> usize {
    assert!(gap_secs > 0, "session gap must be positive");
    let mut sessions = 0usize;
    for times in by_entity.values_mut() {
        times.sort_unstable();
        sessions += 1;
        sessions += times.windows(2).filter(|p| p[1] - p[0] >= gap_secs).count();
    }
    sessions
}

/// Approximate heap footprint of a materialized record set, for
/// comparison against [`LogTable::heap_bytes`].
pub fn records_heap_bytes(records: &[AccessRecord]) -> usize {
    records
        .iter()
        .map(|r| {
            std::mem::size_of::<AccessRecord>()
                + r.useragent.capacity()
                + r.asn.capacity()
                + r.sitename.capacity()
                + r.uri_path.capacity()
                + r.referer.as_ref().map_or(0, std::string::String::capacity)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::sessionize;

    fn rec(ua: &str, ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 64,
            referer: None,
        }
    }

    #[test]
    fn row_is_48_bytes() {
        assert_eq!(std::mem::size_of::<RecordRow>(), 48);
    }

    #[test]
    fn roundtrip_records() {
        let records =
            vec![rec("GPTBot/1.0", 1, 10, "/a"), rec("bingbot/2.0", 2, 20, "/robots.txt")];
        let table = LogTable::from_records(&records);
        assert_eq!(table.len(), 2);
        assert_eq!(table.to_records(), records);
        assert_eq!(table.record(1), records[1]);
        assert!(table.is_robots_fetch(&table.rows()[1]));
        assert!(!table.is_robots_fetch(&table.rows()[0]));
    }

    #[test]
    fn referer_roundtrip() {
        let mut r = rec("a", 1, 0, "/");
        r.referer = Some("https://ref.example/x".into());
        let table = LogTable::from_records(std::slice::from_ref(&r));
        assert_eq!(table.record(0), r);
    }

    #[test]
    fn interning_shares_strings() {
        let records: Vec<AccessRecord> = (0..100).map(|t| rec("GPTBot/1.0", 1, t, "/a")).collect();
        let table = LogTable::from_records(&records);
        // ua, asn, sitename, path — one symbol each.
        assert_eq!(table.interner().len(), 4);
        assert!(table.heap_bytes() < records_heap_bytes(&records));
    }

    #[test]
    fn absorb_remaps_symbols() {
        let mut a = LogTable::from_records(&[rec("ua-a", 1, 5, "/x")]);
        let b = LogTable::from_records(&[rec("ua-b", 2, 3, "/x"), rec("ua-a", 1, 9, "/y")]);
        a.absorb(&b);
        assert_eq!(a.len(), 3);
        let recs = a.to_records();
        assert_eq!(recs[1].useragent, "ua-b");
        assert_eq!(recs[2].useragent, "ua-a");
        // "ua-a" resolved to the same symbol in both tables' rows.
        assert_eq!(a.rows()[0].useragent, a.rows()[2].useragent);
    }

    #[test]
    fn sort_canonical_matches_record_sort() {
        let records = vec![
            rec("b-agent", 7, 50, "/z"),
            rec("a-agent", 3, 50, "/z"),
            rec("a-agent", 3, 50, "/a"),
            rec("zz", 1, 10, "/q"),
            rec("a-agent", 1, 50, "/z"),
        ];
        let mut table = LogTable::from_records(&records);
        table.sort_canonical();

        let mut expect = records.clone();
        expect.sort_by(|a, b| {
            (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
                b.timestamp,
                &b.useragent,
                b.ip_hash,
                &b.uri_path,
            ))
        });
        assert_eq!(table.to_records(), expect);
    }

    #[test]
    fn sessionize_matches_record_path() {
        let records = vec![
            rec("a", 1, 0, "/x"),
            rec("a", 1, 100, "/y"),
            rec("a", 1, 10_000, "/x"),
            rec("b", 2, 0, "/x"),
        ];
        let table = LogTable::from_records(&records);
        assert_eq!(table.sessionize(300), sessionize(&records, 300));
    }

    #[test]
    fn count_sessions_matches_sessionize() {
        let records = vec![
            rec("a", 1, 0, "/x"),
            rec("a", 1, 100, "/y"),
            rec("a", 1, 10_000, "/x"),
            rec("b", 2, 0, "/x"),
        ];
        let table = LogTable::from_records(&records);
        assert_eq!(table.count_sessions(table.rows(), 300), table.sessionize(300).len());
        let subset: Vec<&RecordRow> = table.rows().iter().take(2).collect();
        assert_eq!(
            table.count_sessions(subset.iter().copied(), 300),
            table.sessionize_rows(subset.iter().copied(), 300).len()
        );
    }

    #[test]
    fn empty_table() {
        let table = LogTable::new();
        assert!(table.is_empty());
        assert!(table.to_records().is_empty());
        assert!(table.sessionize(300).is_empty());
        assert!(table.by_tau().is_empty());
        assert!(table.by_useragent().is_empty());
        assert!(table.robots_checks_by_useragent().is_empty());
    }

    #[test]
    fn tau_grouping() {
        let records = vec![
            rec("a", 1, 0, "/x"),
            rec("a", 1, 5, "/y"),
            rec("a", 2, 0, "/x"),
            rec("b", 1, 0, "/x"),
        ];
        let table = LogTable::from_records(&records);
        let groups = table.by_tau();
        assert_eq!(groups.len(), 3);
        // Sorted by (asn, ip, ua); all share the GOOGLE ASN.
        let keys: Vec<(&str, u64, &str)> = groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![("GOOGLE", 1, "a"), ("GOOGLE", 1, "b"), ("GOOGLE", 2, "a")]);
        // Two accesses of ("GOOGLE", 1, "a"), in time order.
        assert_eq!(groups[0].1.len(), 2);
        assert!(groups[0].1[0].timestamp <= groups[0].1[1].timestamp);
        // Raw UA is part of the key: same ASN/IP, different agent strings
        // stratify apart (the §4.2 τ-tuple).
        assert_ne!(groups[0].0, groups[1].0);
    }

    #[test]
    fn useragent_grouping() {
        let records = vec![rec("a", 1, 0, "/"), rec("a", 2, 1, "/"), rec("b", 3, 2, "/")];
        let table = LogTable::from_records(&records);
        let groups = table.by_useragent();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "a");
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, "b");
        assert_eq!(groups[1].1.len(), 1);
    }

    #[test]
    fn robots_checks_view() {
        let records = vec![
            rec("a", 1, 10, "/robots.txt"),
            rec("a", 1, 20, "/page"),
            rec("a", 1, 30, "/robots.txt"),
            rec("b", 2, 5, "/page"),
        ];
        let table = LogTable::from_records(&records);
        let checks = table.robots_checks_by_useragent();
        assert_eq!(checks["a"], vec![10, 30]);
        assert!(!checks.contains_key("b"));
    }
}

//! # botscope-weblog
//!
//! The web-log substrate: the anonymized access-record schema of the IMC
//! '25 study (paper §3.1), plus everything needed to prepare such logs for
//! analysis.
//!
//! * [`time`] — a minimal civil-time implementation (no external crates):
//!   unix-second timestamps with ISO-8601 parsing/formatting, which is the
//!   timestamp format of the study's dataset,
//! * [`iphash`] — keyed SipHash-2-4, implemented in-crate, providing the
//!   study's "one-way cryptographic hash of the web visitor's IP address",
//! * [`record`] — the ten-field access record (useragent, timestamp, IP
//!   hash, ASN, sitename, URI path, status, bytes, referer),
//! * [`intern`] / [`table`] — the interned data model: [`StringInterner`]
//!   maps repeated strings to 4-byte [`Sym`] ids and [`LogTable`] stores
//!   compact 48-byte rows, materializing [`AccessRecord`] views on
//!   demand (the memory-scalable representation at paper volume); the
//!   table also serves the groupings the compliance metrics need
//!   ([`LogTable::by_tau`], [`LogTable::by_useragent`],
//!   [`LogTable::robots_checks_by_useragent`]),
//! * [`codec`] — a CSV reader/writer for record persistence, including a
//!   streaming [`codec::decode_stream`] / [`codec::decode_table_read`]
//!   path for logs too large to hold in memory,
//! * [`colfmt`] — a compact binary on-disk format (string dictionary
//!   pages + fixed-width symbol rows, versioned header): the same data
//!   model as [`LogTable`], persisted; decodes with bounded memory and
//!   hardened against corrupt input,
//! * [`sink`] — row-streaming output ([`sink::RowSink`]): producers
//!   with a deterministic row order write CSV/JSONL/binary incrementally
//!   instead of materializing a full table first,
//! * [`stream`] — the input-side dual ([`stream::RowStream`]): pull-based
//!   interned-row readers over CSV, binary, or in-memory tables,
//! * [`merge`] — the shared k-way merge of canonically sorted runs
//!   ([`merge::merge_runs`]), byte-identical to materialize-then-sort,
//! * [`session`] — 5-minute-gap sessionization (paper §3.2),
//! * [`filter`] — the study's preprocessing filters (scanner removal,
//!   date-range restriction),
//! * [`summary`] — dataset overview statistics (paper Table 2).
//!
//! ```
//! use botscope_weblog::record::AccessRecord;
//! use botscope_weblog::session::{sessionize, SESSION_GAP_SECS};
//! use botscope_weblog::time::Timestamp;
//!
//! let mk = |t: u64, path: &str| AccessRecord {
//!     useragent: "GPTBot/1.0".into(),
//!     timestamp: Timestamp::from_unix(t),
//!     ip_hash: 0xDEADBEEF,
//!     asn: "MICROSOFT-CORP-MSN-AS-BLOCK".into(),
//!     sitename: "site-00.example.edu".into(),
//!     uri_path: path.into(),
//!     status: 200,
//!     bytes: 1024,
//!     referer: None,
//! };
//! // Three accesses within the gap, one far later: two sessions.
//! let records = vec![mk(0, "/a"), mk(100, "/b"), mk(200, "/c"), mk(10_000, "/d")];
//! let sessions = sessionize(&records, SESSION_GAP_SECS);
//! assert_eq!(sessions.len(), 2);
//! assert_eq!(sessions[0].accesses, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod colfmt;
pub mod fetchlog;
pub mod filter;
pub mod intern;
pub mod iphash;
pub mod jsonl;
pub mod merge;
pub mod record;
pub mod session;
pub mod sink;
pub mod stream;
pub mod summary;
pub mod table;
pub mod time;

pub use fetchlog::FetchEventLog;
pub use intern::{StringInterner, Sym};
pub use iphash::IpHasher;
pub use merge::{merge_runs, merge_runs_parallel, MergeRun};
pub use record::AccessRecord;
pub use session::{sessionize, Session, SESSION_GAP_SECS};
pub use stream::RowStream;
pub use summary::DatasetSummary;
pub use table::{LogTable, RecordRow};
pub use time::Timestamp;

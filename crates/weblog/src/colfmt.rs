//! A compact binary on-disk format for access logs.
//!
//! CSV is the interchange format; at paper scale it spends most of its
//! bytes repeating the same few thousand strings. This module stores a
//! log the way [`crate::table::LogTable`] holds it in memory: a string
//! dictionary plus fixed-width rows of 4-byte symbol ids.
//!
//! ## Layout
//!
//! ```text
//! header    "BSCL" magic + u32 LE version (currently 1)
//! page*     tagged pages, in file order:
//!   0x01    dictionary page: u32 LE count, then count entries of
//!           (u32 LE byte length, UTF-8 bytes). Entries are assigned
//!           consecutive ids starting from the number of entries in
//!           all previous dictionary pages.
//!   0x02    row page: u32 LE count, then count fixed 46-byte rows
//!           (all integers LE): useragent u32, asn u32, sitename u32,
//!           uri_path u32, referer u32 (`u32::MAX` = none),
//!           timestamp u64, ip_hash u64, bytes u64, status u16.
//!           Ids must reference already-defined dictionary entries.
//!   0x00    end marker; nothing may follow it.
//! ```
//!
//! Dictionary pages may interleave with row pages, so a producer can
//! stream rows as they are generated ([`BinSink`]) while a whole-table
//! writer emits one dictionary up front ([`write_table`]). Both decode
//! identically with [`BinReader`], which needs only `BufRead` — memory
//! stays bounded by the dictionary plus one row.
//!
//! Decoding is hardened against corrupt or hostile input: every failure
//! is a clean [`DecodeError`] (with the byte offset in the message), and
//! no allocation is ever sized from an untrusted length field beyond the
//! [`MAX_STRING_LEN`] cap.

use std::io::{self, BufRead, Write};

use crate::codec::DecodeError;
use crate::intern::{StringInterner, Sym};
use crate::record::AccessRecord;
use crate::sink::RowSink;
use crate::table::{LogTable, RecordRow};
use crate::time::Timestamp;

/// File magic: the first four bytes of every binary log.
pub const MAGIC: [u8; 4] = *b"BSCL";

/// Current format version, written after the magic.
pub const VERSION: u32 = 1;

/// End-of-file marker tag.
const TAG_END: u8 = 0x00;
/// Dictionary page tag.
const TAG_DICT: u8 = 0x01;
/// Row page tag.
const TAG_ROWS: u8 = 0x02;

/// Bytes of one encoded row.
const ROW_BYTES: usize = 46;

/// Sentinel id for "no referer".
const NO_REFERER: u32 = u32::MAX;

/// Upper bound on a dictionary string's byte length. Anything larger is
/// rejected as corrupt before any allocation happens.
pub const MAX_STRING_LEN: u32 = 1 << 20;

/// Default number of rows buffered per row page by [`BinSink`].
pub const PAGE_ROWS: usize = 4096;

fn encode_row(row: &RecordRow, buf: &mut [u8; ROW_BYTES]) {
    let id = |sym: Sym| sym.index() as u32;
    buf[0..4].copy_from_slice(&id(row.useragent).to_le_bytes());
    buf[4..8].copy_from_slice(&id(row.asn).to_le_bytes());
    buf[8..12].copy_from_slice(&id(row.sitename).to_le_bytes());
    buf[12..16].copy_from_slice(&id(row.uri_path).to_le_bytes());
    buf[16..20].copy_from_slice(&row.referer.map_or(NO_REFERER, id).to_le_bytes());
    buf[20..28].copy_from_slice(&row.timestamp.unix().to_le_bytes());
    buf[28..36].copy_from_slice(&row.ip_hash.to_le_bytes());
    buf[36..44].copy_from_slice(&row.bytes.to_le_bytes());
    buf[44..46].copy_from_slice(&row.status.to_le_bytes());
}

fn write_dict_entries<W: Write>(w: &mut W, entries: &[&str]) -> io::Result<()> {
    w.write_all(&[TAG_DICT])?;
    w.write_all(&(entries.len() as u32).to_le_bytes())?;
    for s in entries {
        w.write_all(&(s.len() as u32).to_le_bytes())?;
        w.write_all(s.as_bytes())?;
    }
    Ok(())
}

fn write_row_page<W: Write>(w: &mut W, rows: &[RecordRow]) -> io::Result<()> {
    w.write_all(&[TAG_ROWS])?;
    w.write_all(&(rows.len() as u32).to_le_bytes())?;
    let mut buf = [0u8; ROW_BYTES];
    for row in rows {
        encode_row(row, &mut buf);
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Write a whole table: header, one dictionary page covering the full
/// interner in id order, then the rows (raw symbol ids) in pages of
/// [`PAGE_ROWS`], then the end marker. Does not flush.
///
/// Because the dictionary is written in id order, a [`BinReader`]
/// decoding the file rebuilds an interner with **identical** ids — rows
/// spilled through this path keep their symbols valid against the
/// writing table's interner (or any append-only extension of it).
pub fn write_table<W: Write>(w: &mut W, table: &LogTable) -> io::Result<()> {
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    if !table.interner().is_empty() {
        let entries: Vec<&str> = table.interner().iter().map(|(_, s)| s).collect();
        write_dict_entries(w, &entries)?;
    }
    for chunk in table.rows().chunks(PAGE_ROWS) {
        write_row_page(w, chunk)?;
    }
    w.write_all(&[TAG_END])
}

/// Streams rows into the binary format, interning strings on the fly.
///
/// Every [`PAGE_ROWS`] rows (configurable via
/// [`BinSink::with_page_rows`]) the sink emits a dictionary page holding
/// the strings first seen since the previous page, followed by a row
/// page — so a consumer always sees a string's definition before any
/// row that references it. [`RowSink::finish`] writes the remainder, the
/// end marker, and flushes.
///
/// Strings are interned in record-field order (useragent, asn,
/// sitename, uri_path, referer), matching
/// [`crate::table::LogTable::push_record`]: feeding the same records in
/// the same order as a materialized table produces the same dictionary.
#[derive(Debug)]
pub struct BinSink<W: Write> {
    writer: W,
    interner: StringInterner,
    /// Interner entries already written in a dictionary page.
    dict_flushed: usize,
    rows: Vec<RecordRow>,
    page_rows: usize,
    finished: bool,
}

impl<W: Write> BinSink<W> {
    /// Wrap `writer`, emitting the format header immediately.
    pub fn new(mut writer: W) -> io::Result<BinSink<W>> {
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        Ok(BinSink {
            writer,
            interner: StringInterner::new(),
            dict_flushed: 0,
            rows: Vec::new(),
            page_rows: PAGE_ROWS,
            finished: false,
        })
    }

    /// Use `page_rows` rows per page instead of [`PAGE_ROWS`] (must be
    /// at least 1). Smaller pages mean earlier bytes on the wire;
    /// larger pages mean fewer page headers.
    pub fn with_page_rows(mut self, page_rows: usize) -> BinSink<W> {
        assert!(page_rows >= 1, "page_rows must be at least 1");
        self.page_rows = page_rows;
        self
    }

    /// The dictionary built so far.
    pub fn interner(&self) -> &StringInterner {
        &self.interner
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn flush_page(&mut self) -> io::Result<()> {
        if self.interner.len() > self.dict_flushed {
            let fresh: Vec<&str> =
                self.interner.iter().skip(self.dict_flushed).map(|(_, s)| s).collect();
            write_dict_entries(&mut self.writer, &fresh)?;
            self.dict_flushed = self.interner.len();
        }
        if !self.rows.is_empty() {
            write_row_page(&mut self.writer, &self.rows)?;
            self.rows.clear();
        }
        Ok(())
    }
}

impl<W: Write> RowSink for BinSink<W> {
    fn write_row(&mut self, record: &AccessRecord) -> io::Result<()> {
        let row = RecordRow {
            useragent: self.interner.intern(&record.useragent),
            asn: self.interner.intern(&record.asn),
            sitename: self.interner.intern(&record.sitename),
            uri_path: self.interner.intern(&record.uri_path),
            referer: record.referer.as_deref().map(|s| self.interner.intern(s)),
            timestamp: record.timestamp,
            ip_hash: record.ip_hash,
            bytes: record.bytes,
            status: record.status,
        };
        self.rows.push(row);
        if self.rows.len() >= self.page_rows {
            self.flush_page()?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        if !self.finished {
            self.flush_page()?;
            self.writer.write_all(&[TAG_END])?;
            self.finished = true;
        }
        self.writer.flush()
    }
}

/// Streaming binary decoder.
///
/// Yields one [`RecordRow`] at a time; symbols live in the reader's own
/// interner ([`BinReader::interner`]), which grows as dictionary pages
/// arrive. The reader deduplicates dictionary strings, so even a
/// (corrupt) file defining the same string twice resolves to one
/// symbol. All errors — truncation, bad magic, hostile lengths,
/// undefined ids, trailing garbage — surface as [`DecodeError`] with
/// the byte offset in the message; decoding never panics.
#[derive(Debug)]
pub struct BinReader<R: BufRead> {
    reader: R,
    interner: StringInterner,
    /// File dictionary id → symbol in `interner` (empty in raw mode).
    syms: Vec<Sym>,
    /// Raw mode: dictionary entries are counted and skipped, never
    /// materialized; row ids pass through as-written.
    raw: bool,
    /// Dictionary entries defined so far (raw mode's id bound).
    raw_defined: u32,
    /// Rows remaining in the current row page.
    pending_rows: u32,
    /// Bytes consumed so far (for error messages).
    offset: u64,
    /// Set once the end marker (or an error) has been seen.
    done: bool,
}

impl<R: BufRead> BinReader<R> {
    /// Wrap `reader` and validate the format header.
    pub fn new(reader: R) -> Result<BinReader<R>, DecodeError> {
        BinReader::with_mode(reader, false)
    }

    /// A reader that yields rows with symbol ids **exactly as written**,
    /// skipping over dictionary strings without materializing them.
    ///
    /// For files produced by [`write_table`] the ids on disk are the
    /// writing table's own, so a caller holding that interner (or an
    /// append-only extension — e.g. a generation worker's final
    /// dictionary covering every run it spilled) can resolve the rows
    /// without this reader rebuilding a per-file dictionary copy. Memory
    /// stays O(1) per reader regardless of dictionary size, which is
    /// what keeps a wide k-way spill merge inside its budget.
    ///
    /// Ids are still bounds-checked against the count of dictionary
    /// entries defined so far, and string lengths against
    /// [`MAX_STRING_LEN`]; corrupt input fails with a clean
    /// [`DecodeError`], never a panic. [`BinReader::interner`] stays
    /// empty in this mode.
    pub fn new_raw(reader: R) -> Result<BinReader<R>, DecodeError> {
        BinReader::with_mode(reader, true)
    }

    fn with_mode(reader: R, raw: bool) -> Result<BinReader<R>, DecodeError> {
        let mut r = BinReader {
            reader,
            interner: StringInterner::new(),
            syms: Vec::new(),
            raw,
            raw_defined: 0,
            pending_rows: 0,
            offset: 0,
            done: false,
        };
        let mut header = [0u8; 8];
        r.read_exact(&mut header, "file header")?;
        if header[0..4] != MAGIC {
            return Err(r.err(format!("bad magic {:?} (want {:?})", &header[0..4], MAGIC)));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(r.err(format!("unsupported version {version} (want {VERSION})")));
        }
        Ok(r)
    }

    /// The dictionary decoded so far. After a full decode of a file
    /// written by [`write_table`], ids match the writing table's
    /// interner exactly.
    pub fn interner(&self) -> &StringInterner {
        &self.interner
    }

    /// Consume the reader, returning its interner.
    pub fn into_interner(self) -> StringInterner {
        self.interner
    }

    fn err(&self, message: String) -> DecodeError {
        DecodeError { line: 0, message: format!("{message} (byte offset {})", self.offset) }
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), DecodeError> {
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                self.err(format!("truncated {what}"))
            } else {
                self.err(format!("read failed in {what}: {e}"))
            }
        })?;
        self.offset += buf.len() as u64;
        Ok(())
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        let mut buf = [0u8; 4];
        self.read_exact(&mut buf, what)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Skip `len` bytes through a bounded scratch buffer (never sizes an
    /// allocation from the untrusted length).
    fn skip_bytes(&mut self, len: u32, what: &str) -> Result<(), DecodeError> {
        let mut scratch = [0u8; 4096];
        let mut remaining = len as usize;
        while remaining > 0 {
            let take = remaining.min(scratch.len());
            self.read_exact(&mut scratch[..take], what)?;
            remaining -= take;
        }
        Ok(())
    }

    fn read_dict_page(&mut self) -> Result<(), DecodeError> {
        // The count is untrusted: entries are read one by one, so a
        // hostile count just hits EOF — it never sizes an allocation.
        let count = self.read_u32("dictionary count")?;
        for _ in 0..count {
            let len = self.read_u32("string length")?;
            if len > MAX_STRING_LEN {
                return Err(self.err(format!("string length {len} exceeds cap {MAX_STRING_LEN}")));
            }
            if self.raw {
                self.skip_bytes(len, "dictionary string")?;
                self.raw_defined = self
                    .raw_defined
                    .checked_add(1)
                    .ok_or_else(|| self.err("dictionary entry count overflows u32".into()))?;
                continue;
            }
            let mut buf = vec![0u8; len as usize];
            self.read_exact(&mut buf, "dictionary string")?;
            let s = std::str::from_utf8(&buf)
                .map_err(|e| self.err(format!("dictionary string is not UTF-8: {e}")))?;
            let sym = self.interner.intern(s);
            self.syms.push(sym);
        }
        Ok(())
    }

    fn sym(&self, id: u32, field: &str) -> Result<Sym, DecodeError> {
        if self.raw {
            if id < self.raw_defined {
                return Ok(Sym::from_index(id as usize));
            }
            return Err(self.err(format!("{field} id {id} not in dictionary")));
        }
        self.syms
            .get(id as usize)
            .copied()
            .ok_or_else(|| self.err(format!("{field} id {id} not in dictionary")))
    }

    fn read_row(&mut self) -> Result<RecordRow, DecodeError> {
        let mut buf = [0u8; ROW_BYTES];
        self.read_exact(&mut buf, "row")?;
        let u32_at = |i: usize| u32::from_le_bytes(buf[i..i + 4].try_into().expect("4 bytes"));
        let u64_at = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("8 bytes"));
        let referer = match u32_at(16) {
            NO_REFERER => None,
            id => Some(self.sym(id, "referer")?),
        };
        Ok(RecordRow {
            useragent: self.sym(u32_at(0), "useragent")?,
            asn: self.sym(u32_at(4), "asn")?,
            sitename: self.sym(u32_at(8), "sitename")?,
            uri_path: self.sym(u32_at(12), "uri_path")?,
            referer,
            timestamp: Timestamp::from_unix(u64_at(20)),
            ip_hash: u64_at(28),
            bytes: u64_at(36),
            status: u16::from_le_bytes(buf[44..46].try_into().expect("2 bytes")),
        })
    }

    /// Decode the next row, `None` at (a well-formed) end of file. Fuses
    /// after the first error.
    pub fn next_row(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        if self.done {
            return None;
        }
        let result = self.advance();
        match &result {
            Some(Err(_)) | None => self.done = true,
            Some(Ok(_)) => {}
        }
        result
    }

    fn advance(&mut self) -> Option<Result<RecordRow, DecodeError>> {
        loop {
            if self.pending_rows > 0 {
                self.pending_rows -= 1;
                return Some(self.read_row());
            }
            let mut tag = [0u8; 1];
            if let Err(e) = self.read_exact(&mut tag, "page tag (missing end marker?)") {
                return Some(Err(e));
            }
            match tag[0] {
                TAG_END => {
                    // Nothing may follow the end marker.
                    return match self.reader.fill_buf() {
                        Ok([]) => None,
                        Ok(_) => Some(Err(self.err("trailing data after end marker".into()))),
                        Err(e) => Some(Err(self.err(format!("read failed after end: {e}")))),
                    };
                }
                TAG_DICT => {
                    if let Err(e) = self.read_dict_page() {
                        return Some(Err(e));
                    }
                }
                TAG_ROWS => match self.read_u32("row count") {
                    Ok(n) => self.pending_rows = n,
                    Err(e) => return Some(Err(e)),
                },
                other => return Some(Err(self.err(format!("unknown page tag {other:#04x}")))),
            }
        }
    }
}

/// Decode a whole binary file into a [`LogTable`].
///
/// The table's interner is the reader's dictionary, so for files from
/// [`write_table`] the round trip preserves symbol ids exactly.
pub fn read_table<R: BufRead>(reader: R) -> Result<LogTable, DecodeError> {
    let mut r = BinReader::new(reader)?;
    let mut rows = Vec::new();
    while let Some(row) = r.next_row() {
        rows.push(row?);
    }
    Ok(LogTable::from_parts(r.into_interner(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec;

    fn sample(i: u64) -> AccessRecord {
        AccessRecord {
            useragent: format!("bot/{}", i % 3),
            timestamp: Timestamp::from_unix(1_000 + i),
            ip_hash: i * 7,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: if i.is_multiple_of(4) { "/robots.txt".into() } else { format!("/page/{i}") },
            status: 200,
            bytes: 10 + i,
            referer: (i.is_multiple_of(2)).then(|| format!("https://ref.example/{}", i % 2)),
        }
    }

    fn sample_table(n: u64) -> LogTable {
        let records: Vec<AccessRecord> = (0..n).map(sample).collect();
        LogTable::from_records(&records)
    }

    #[test]
    fn write_table_roundtrip_preserves_ids() {
        let table = sample_table(100);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        let back = read_table(&bytes[..]).unwrap();
        // Same interner ids, same raw rows — not just equal records.
        assert_eq!(back.rows(), table.rows());
        let ids: Vec<(usize, String)> =
            table.interner().iter().map(|(s, t)| (s.index(), t.to_string())).collect();
        let back_ids: Vec<(usize, String)> =
            back.interner().iter().map(|(s, t)| (s.index(), t.to_string())).collect();
        assert_eq!(back_ids, ids);
        assert_eq!(back.to_records(), table.to_records());
    }

    #[test]
    fn empty_table_roundtrip() {
        let table = LogTable::new();
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        assert_eq!(bytes.len(), 9); // magic + version + end tag
        let back = read_table(&bytes[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn sink_matches_write_table_for_push_record_order() {
        // A table built by push_record interns in the same order as the
        // sink, so the bytes agree even with interleaved pages.
        let table = sample_table(10);
        let mut whole = Vec::new();
        write_table(&mut whole, &table).unwrap();

        let mut sink = BinSink::new(Vec::new()).unwrap().with_page_rows(4);
        for r in table.iter_records() {
            sink.write_row(&r).unwrap();
        }
        sink.finish().unwrap();
        let streamed = sink.into_inner();
        // Page boundaries differ, decoded content does not.
        let back = read_table(&streamed[..]).unwrap();
        assert_eq!(back.rows(), table.rows());
        assert_eq!(read_table(&whole[..]).unwrap().rows(), back.rows());
    }

    #[test]
    fn sink_is_deterministic_for_fixed_page_size() {
        let table = sample_table(23);
        let mut outs = Vec::new();
        for _ in 0..2 {
            let mut sink = BinSink::new(Vec::new()).unwrap().with_page_rows(7);
            for r in table.iter_records() {
                sink.write_row(&r).unwrap();
            }
            sink.finish().unwrap();
            outs.push(sink.into_inner());
        }
        assert_eq!(outs[0], outs[1]);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut sink = BinSink::new(Vec::new()).unwrap();
        sink.write_row(&sample(1)).unwrap();
        sink.finish().unwrap();
        sink.finish().unwrap();
        let bytes = sink.into_inner();
        assert_eq!(read_table(&bytes[..]).unwrap().len(), 1);
    }

    #[test]
    fn binary_is_smaller_than_csv_at_volume() {
        // Realistic repetition: a bounded path population, as in real
        // logs, so the dictionary amortizes across rows.
        let records: Vec<AccessRecord> = (0..2_000)
            .map(|i| AccessRecord { uri_path: format!("/page/{}", i % 64), ..sample(i) })
            .collect();
        let table = LogTable::from_records(&records);
        let mut bin = Vec::new();
        write_table(&mut bin, &table).unwrap();
        let csv = codec::encode_table(&table);
        assert!(
            bin.len() * 2 < csv.len(),
            "binary {} bytes should be well under CSV {} bytes",
            bin.len(),
            csv.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let e = BinReader::new(&b"NOPE\x01\x00\x00\x00\x00"[..]).unwrap_err();
        assert!(e.message.contains("bad magic"), "{e}");
        assert_eq!(e.line, 0);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.push(TAG_END);
        let e = BinReader::new(&bytes[..]).unwrap_err();
        assert!(e.message.contains("unsupported version 99"), "{e}");
    }

    #[test]
    fn truncation_is_clean_error_at_every_length() {
        let table = sample_table(5);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        for cut in 0..bytes.len() {
            let r = read_table(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes should fail to decode");
        }
        assert!(read_table(&bytes[..]).is_ok());
    }

    #[test]
    fn hostile_string_length_is_capped_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB "string"
        let e = read_table(&bytes[..]).unwrap_err();
        assert!(e.message.contains("exceeds cap"), "{e}");
    }

    #[test]
    fn hostile_counts_hit_eof_not_oom() {
        // A dict page claiming u32::MAX entries with no bytes behind it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_table(&bytes[..]).is_err());
        // Same for a row page.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_ROWS);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(read_table(&bytes[..]).is_err());
    }

    #[test]
    fn undefined_symbol_id_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_ROWS);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&[0u8; ROW_BYTES]); // ids 0 with empty dict
        let e = read_table(&bytes[..]).unwrap_err();
        assert!(e.message.contains("not in dictionary"), "{e}");
    }

    #[test]
    fn missing_end_marker_rejected() {
        let table = sample_table(3);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        bytes.pop(); // drop TAG_END
        let e = read_table(&bytes[..]).unwrap_err();
        assert!(e.message.contains("end marker"), "{e}");
    }

    #[test]
    fn trailing_data_rejected() {
        let table = sample_table(3);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        bytes.push(0x7F);
        let e = read_table(&bytes[..]).unwrap_err();
        assert!(e.message.contains("trailing data"), "{e}");
    }

    #[test]
    fn duplicate_dictionary_strings_deduplicate() {
        // Two dict entries with the same text: both file ids must
        // resolve, to the same interned symbol.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for _ in 0..2 {
            bytes.extend_from_slice(&2u32.to_le_bytes());
            bytes.extend_from_slice(b"ua");
        }
        let mut row = [0u8; ROW_BYTES];
        row[0..4].copy_from_slice(&0u32.to_le_bytes()); // ua -> id 0
        row[4..8].copy_from_slice(&1u32.to_le_bytes()); // asn -> id 1 (same string)
        row[8..12].copy_from_slice(&0u32.to_le_bytes());
        row[12..16].copy_from_slice(&1u32.to_le_bytes());
        row[16..20].copy_from_slice(&NO_REFERER.to_le_bytes());
        bytes.push(TAG_ROWS);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&row);
        bytes.push(TAG_END);
        let table = read_table(&bytes[..]).unwrap();
        assert_eq!(table.interner().len(), 1);
        assert_eq!(table.rows()[0].useragent, table.rows()[0].asn);
        assert_eq!(table.resolve(table.rows()[0].useragent), "ua");
    }

    #[test]
    fn raw_reader_yields_ids_as_written() {
        // write_table preserves the writing table's ids, so the raw
        // reader's rows must equal the table's raw rows exactly — the
        // contract the spill merge's shared-dictionary resolution
        // depends on.
        let table = sample_table(100);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        let mut raw = BinReader::new_raw(&bytes[..]).unwrap();
        let mut rows = Vec::new();
        while let Some(row) = raw.next_row() {
            rows.push(row.unwrap());
        }
        assert_eq!(rows, table.rows());
        assert!(raw.interner().is_empty(), "raw mode must not materialize the dictionary");
    }

    #[test]
    fn raw_reader_still_bounds_checks_ids() {
        // A row referencing an id beyond the dictionary must fail
        // cleanly in raw mode too.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(b"ua");
        let mut row = [0u8; ROW_BYTES];
        row[0..4].copy_from_slice(&7u32.to_le_bytes()); // undefined id
        row[16..20].copy_from_slice(&NO_REFERER.to_le_bytes());
        bytes.push(TAG_ROWS);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&row);
        bytes.push(TAG_END);
        let mut raw = BinReader::new_raw(&bytes[..]).unwrap();
        let e = raw.next_row().unwrap().unwrap_err();
        assert!(e.message.contains("not in dictionary"), "{e}");
    }

    #[test]
    fn raw_reader_truncation_is_clean_error_at_every_length() {
        let table = sample_table(5);
        let mut bytes = Vec::new();
        write_table(&mut bytes, &table).unwrap();
        for cut in 0..bytes.len() {
            let mut ok = true;
            match BinReader::new_raw(&bytes[..cut]) {
                Err(_) => ok = false,
                Ok(mut r) => {
                    while let Some(row) = r.next_row() {
                        if row.is_err() {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            assert!(!ok, "prefix of {cut} bytes should fail to decode");
        }
    }

    #[test]
    fn reader_fuses_after_error() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(0x7F); // unknown tag
        let mut r = BinReader::new(&bytes[..]).unwrap();
        assert!(r.next_row().unwrap().is_err());
        assert!(r.next_row().is_none());
        assert!(r.next_row().is_none());
    }

    #[test]
    fn non_utf8_dictionary_string_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.push(TAG_DICT);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let e = read_table(&bytes[..]).unwrap_err();
        assert!(e.message.contains("not UTF-8"), "{e}");
    }
}

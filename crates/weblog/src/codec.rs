//! CSV persistence for access records.
//!
//! A small, standards-correct CSV implementation (RFC 4180 quoting) fixed
//! to the ten-column record schema. Hand-rolled deliberately: the schema is
//! static, so a serde stack would add dependency weight without value
//! (see DESIGN.md §7).

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use crate::record::AccessRecord;
use crate::table::LogTable;
use crate::time::Timestamp;

/// The header row.
pub const HEADER: &str = "useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer";

/// Error decoding a CSV line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Line 0 means "no line number", e.g. errors from the binary
        // format (`crate::colfmt`), which reports byte offsets in the
        // message instead.
        if self.line == 0 {
            write!(f, "decode error: {}", self.message)
        } else {
            write!(f, "CSV decode error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for DecodeError {}

/// Quote a field if it contains a comma, quote, or newline.
fn quote(field: &str, out: &mut String) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Encode one record as a CSV line (no trailing newline).
pub fn encode_record(r: &AccessRecord) -> String {
    let mut out = String::with_capacity(128);
    quote(&r.useragent, &mut out);
    out.push(',');
    out.push_str(&r.timestamp.to_iso8601());
    let _ = write!(out, ",{:016x},", r.ip_hash);
    quote(&r.asn, &mut out);
    out.push(',');
    quote(&r.sitename, &mut out);
    out.push(',');
    quote(&r.uri_path, &mut out);
    let _ = write!(out, ",{},{},", r.status, r.bytes);
    quote(r.referer.as_deref().unwrap_or(""), &mut out);
    out
}

/// Encode a full dataset with header.
pub fn encode(records: &[AccessRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&encode_record(r));
        out.push('\n');
    }
    out
}

/// Split one CSV line into fields honouring RFC 4180 quoting.
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(ch),
            }
        } else {
            match ch {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                '"' => return Err("stray quote inside unquoted field".into()),
                _ => cur.push(ch),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(cur);
    Ok(fields)
}

/// Decode one CSV line (not the header) into a record.
pub fn decode_record(line: &str, line_no: usize) -> Result<AccessRecord, DecodeError> {
    let err = |m: String| DecodeError { line: line_no, message: m };
    let fields = split_csv_line(line).map_err(&err)?;
    if fields.len() != 9 {
        return Err(err(format!("expected 9 fields, got {}", fields.len())));
    }
    let timestamp = Timestamp::parse_iso8601(&fields[1]).map_err(|e| err(e.to_string()))?;
    let ip_hash = u64::from_str_radix(&fields[2], 16)
        .map_err(|_| err(format!("bad ip_hash {:?}", fields[2])))?;
    let status =
        fields[6].parse::<u16>().map_err(|_| err(format!("bad status {:?}", fields[6])))?;
    let bytes = fields[7].parse::<u64>().map_err(|_| err(format!("bad bytes {:?}", fields[7])))?;
    let referer = if fields[8].is_empty() { None } else { Some(fields[8].clone()) };
    Ok(AccessRecord {
        useragent: fields[0].clone(),
        timestamp,
        ip_hash,
        asn: fields[3].clone(),
        sitename: fields[4].clone(),
        uri_path: fields[5].clone(),
        status,
        bytes,
        referer,
    })
}

/// Decode a full CSV document (header required).
pub fn decode(text: &str) -> Result<Vec<AccessRecord>, DecodeError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == HEADER => {}
        Some((_, h)) => {
            return Err(DecodeError { line: 1, message: format!("unexpected header {h:?}") })
        }
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        out.push(decode_record(line, idx + 1)?);
    }
    Ok(out)
}

/// Streaming decoder state: see [`decode_stream`].
#[derive(Debug)]
pub struct DecodeStream<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    header_checked: bool,
    done: bool,
}

impl Iterator for DecodeStream<'_> {
    type Item = Result<AccessRecord, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if !self.header_checked {
            self.header_checked = true;
            match self.lines.next() {
                Some((_, h)) if h == HEADER => {}
                Some((_, h)) => {
                    self.done = true;
                    return Some(Err(DecodeError {
                        line: 1,
                        message: format!("unexpected header {h:?}"),
                    }));
                }
                None => {
                    self.done = true;
                    return None;
                }
            }
        }
        for (idx, line) in self.lines.by_ref() {
            if line.is_empty() {
                continue;
            }
            let result = decode_record(line, idx + 1);
            if result.is_err() {
                self.done = true;
            }
            return Some(result);
        }
        self.done = true;
        None
    }
}

/// Decode a CSV document line by line, yielding one record (or the
/// first error) at a time without materializing the whole dataset.
/// Consuming the iterator to the first error is exactly equivalent to
/// [`decode`]; the stream fuses after an error.
pub fn decode_stream(text: &str) -> DecodeStream<'_> {
    DecodeStream { lines: text.lines().enumerate(), header_checked: false, done: false }
}

/// Decode a full CSV document directly into a [`LogTable`], interning
/// strings as rows stream in. Equivalent to
/// `LogTable::from_records(&decode(text)?)` without the intermediate
/// record vector.
pub fn decode_table(text: &str) -> Result<LogTable, DecodeError> {
    let mut table = LogTable::new();
    for result in decode_stream(text) {
        table.push_record(&result?);
    }
    Ok(table)
}

/// Decode from a buffered reader into a [`LogTable`], one line at a
/// time — the path for logs too large to hold as text. I/O errors are
/// reported as [`DecodeError`]s carrying the failing line number.
pub fn decode_table_read<R: BufRead>(mut reader: R) -> Result<LogTable, DecodeError> {
    let mut table = LogTable::new();
    let mut buf = String::new();
    let mut line_no = 0usize;
    loop {
        buf.clear();
        line_no += 1;
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| DecodeError { line: line_no, message: format!("read failed: {e}") })?;
        if n == 0 {
            return Ok(table);
        }
        // Strip exactly one line terminator (`\n` or `\r\n`), matching
        // `str::lines`: a `\r` not followed by `\n` — including on an
        // unterminated final line — is field content.
        let line = match buf.strip_suffix('\n') {
            Some(rest) => rest.strip_suffix('\r').unwrap_or(rest),
            None => buf.as_str(),
        };
        if line_no == 1 {
            if line != HEADER {
                return Err(DecodeError {
                    line: 1,
                    message: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        table.push_record(&decode_record(line, line_no)?);
    }
}

/// Encode a table to a writer, streaming row by row (header included).
pub fn write_table<W: Write>(w: &mut W, table: &LogTable) -> io::Result<()> {
    w.write_all(HEADER.as_bytes())?;
    w.write_all(b"\n")?;
    let mut line = String::with_capacity(160);
    for row in table.rows() {
        line.clear();
        let r = table.materialize(row);
        line.push_str(&encode_record(&r));
        line.push('\n');
        w.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Encode a whole table as a CSV string (header included). Equivalent
/// to `encode(&table.to_records())`.
pub fn encode_table(table: &LogTable) -> String {
    let mut out = Vec::with_capacity(table.len() * 128 + HEADER.len() + 1);
    write_table(&mut out, table).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("encoded CSV is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ua: &str, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_date(2025, 2, 12),
            ip_hash: 0xABCD,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 512,
            referer: None,
        }
    }

    #[test]
    fn roundtrip_simple() {
        let records = vec![sample("GPTBot/1.0", "/a"), sample("bingbot/2.0", "/b")];
        let text = encode(&records);
        let back = decode(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn roundtrip_with_quoting() {
        let mut r = sample("Mozilla/5.0 (compatible; X, \"quoted\"; +http://x)", "/q");
        r.referer = Some("https://ref.example/with,comma".into());
        let text = encode(&[r.clone()]);
        let back = decode(&text).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn empty_dataset() {
        assert_eq!(decode("").unwrap(), vec![]);
        let enc = encode(&[]);
        assert_eq!(decode(&enc).unwrap(), vec![]);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(decode("nope\n").is_err());
    }

    #[test]
    fn bad_fields_rejected() {
        let good = encode(&[sample("a", "/")]);
        let mut lines: Vec<&str> = good.lines().collect();
        let tampered = lines[1].replace("2025-02-12T00:00:00Z", "not-a-time");
        lines[1] = &tampered;
        let text = lines.join("\n");
        let e = decode(&text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn field_count_enforced() {
        let text = format!("{HEADER}\nonly,three,fields\n");
        let e = decode(&text).unwrap_err();
        assert!(e.message.contains("9 fields"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let text = format!("{HEADER}\n\"unterminated,2025-02-12T00:00:00Z,0,a,b,/,200,1,\n");
        assert!(decode(&text).is_err());
    }

    #[test]
    fn ip_hash_is_hex() {
        let r = sample("x", "/");
        let line = encode_record(&r);
        assert!(line.contains("000000000000abcd"));
    }

    #[test]
    fn stream_matches_decode_on_valid_input() {
        let records = vec![sample("GPTBot/1.0", "/a"), sample("bingbot/2.0", "/b")];
        let text = encode(&records);
        let streamed: Vec<AccessRecord> =
            decode_stream(&text).collect::<Result<_, _>>().expect("valid input");
        assert_eq!(streamed, records);
    }

    #[test]
    fn stream_yields_error_then_fuses() {
        let text = format!("{HEADER}\nonly,three,fields\n");
        let mut stream = decode_stream(&text);
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none());
        assert!(stream.next().is_none());
    }

    #[test]
    fn stream_rejects_bad_header_like_decode() {
        let e = decode_stream("nope\n").next().unwrap().unwrap_err();
        assert_eq!(e, decode("nope\n").unwrap_err());
        assert!(decode_stream("").next().is_none());
    }

    #[test]
    fn table_roundtrip_matches_record_roundtrip() {
        let mut r = sample("Mozilla/5.0 (compatible; X, \"q\"; +http://x)", "/q");
        r.referer = Some("https://ref.example/with,comma".into());
        let records = vec![r, sample("GPTBot/1.0", "/a")];
        let text = encode(&records);
        let table = decode_table(&text).expect("valid input");
        assert_eq!(table.to_records(), records);
        assert_eq!(encode_table(&table), text);
    }

    #[test]
    fn table_reader_path_matches_in_memory_path() {
        let records = vec![sample("a", "/x"), sample("b", "/y")];
        let text = encode(&records);
        let table = decode_table_read(text.as_bytes()).expect("valid input");
        assert_eq!(table.to_records(), records);
        // CRLF terminators are stripped like str::lines does…
        let crlf = text.replace('\n', "\r\n");
        assert_eq!(decode_table_read(crlf.as_bytes()).unwrap().to_records(), records);
        // …but only ONE terminator: an unquoted field ending in '\r'
        // before the '\r\n' keeps that '\r' as content, exactly as
        // str::lines-based decode sees it.
        let tricky = format!("{HEADER}\nua,2025-02-12T00:00:00Z,0,GOOGLE,site,/a,200,10,ref\r\r\n");
        let by_str = decode(&tricky).unwrap();
        assert_eq!(by_str[0].referer.as_deref(), Some("ref\r"));
        assert_eq!(decode_table_read(tricky.as_bytes()).unwrap().to_records(), by_str);
        // A bare trailing '\r' on an unterminated final line is content.
        let bare = format!("{HEADER}\nua,2025-02-12T00:00:00Z,0,GOOGLE,site,/a,200,10,ref\r");
        assert_eq!(
            decode_table_read(bare.as_bytes()).unwrap().to_records(),
            decode(&bare).unwrap()
        );
        // Errors carry the line number, as in decode.
        let bad = format!("{HEADER}\nonly,three,fields\n");
        let e = decode_table_read(bad.as_bytes()).unwrap_err();
        assert_eq!(e.line, 2);
        // Empty input is an empty table.
        assert!(decode_table_read("".as_bytes()).unwrap().is_empty());
    }
}

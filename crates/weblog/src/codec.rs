//! CSV persistence for access records.
//!
//! A small, standards-correct CSV implementation (RFC 4180 quoting) fixed
//! to the ten-column record schema. Hand-rolled deliberately: the schema is
//! static, so a serde stack would add dependency weight without value
//! (see DESIGN.md §7).

use std::fmt::Write as _;

use crate::record::AccessRecord;
use crate::time::Timestamp;

/// The header row.
pub const HEADER: &str = "useragent,timestamp,ip_hash,asn,sitename,uri_path,status,bytes,referer";

/// Error decoding a CSV line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// 1-based line number (0 when unknown).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV decode error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Quote a field if it contains a comma, quote, or newline.
fn quote(field: &str, out: &mut String) {
    if field.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Encode one record as a CSV line (no trailing newline).
pub fn encode_record(r: &AccessRecord) -> String {
    let mut out = String::with_capacity(128);
    quote(&r.useragent, &mut out);
    out.push(',');
    out.push_str(&r.timestamp.to_iso8601());
    let _ = write!(out, ",{:016x},", r.ip_hash);
    quote(&r.asn, &mut out);
    out.push(',');
    quote(&r.sitename, &mut out);
    out.push(',');
    quote(&r.uri_path, &mut out);
    let _ = write!(out, ",{},{},", r.status, r.bytes);
    quote(r.referer.as_deref().unwrap_or(""), &mut out);
    out
}

/// Encode a full dataset with header.
pub fn encode(records: &[AccessRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 128 + HEADER.len() + 1);
    out.push_str(HEADER);
    out.push('\n');
    for r in records {
        out.push_str(&encode_record(r));
        out.push('\n');
    }
    out
}

/// Split one CSV line into fields honouring RFC 4180 quoting.
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(ch),
            }
        } else {
            match ch {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                '"' => return Err("stray quote inside unquoted field".into()),
                _ => cur.push(ch),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(cur);
    Ok(fields)
}

/// Decode one CSV line (not the header) into a record.
pub fn decode_record(line: &str, line_no: usize) -> Result<AccessRecord, DecodeError> {
    let err = |m: String| DecodeError { line: line_no, message: m };
    let fields = split_csv_line(line).map_err(&err)?;
    if fields.len() != 9 {
        return Err(err(format!("expected 9 fields, got {}", fields.len())));
    }
    let timestamp = Timestamp::parse_iso8601(&fields[1]).map_err(|e| err(e.to_string()))?;
    let ip_hash = u64::from_str_radix(&fields[2], 16)
        .map_err(|_| err(format!("bad ip_hash {:?}", fields[2])))?;
    let status =
        fields[6].parse::<u16>().map_err(|_| err(format!("bad status {:?}", fields[6])))?;
    let bytes = fields[7].parse::<u64>().map_err(|_| err(format!("bad bytes {:?}", fields[7])))?;
    let referer = if fields[8].is_empty() { None } else { Some(fields[8].clone()) };
    Ok(AccessRecord {
        useragent: fields[0].clone(),
        timestamp,
        ip_hash,
        asn: fields[3].clone(),
        sitename: fields[4].clone(),
        uri_path: fields[5].clone(),
        status,
        bytes,
        referer,
    })
}

/// Decode a full CSV document (header required).
pub fn decode(text: &str) -> Result<Vec<AccessRecord>, DecodeError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h == HEADER => {}
        Some((_, h)) => {
            return Err(DecodeError { line: 1, message: format!("unexpected header {h:?}") })
        }
        None => return Ok(Vec::new()),
    }
    let mut out = Vec::new();
    for (idx, line) in lines {
        if line.is_empty() {
            continue;
        }
        out.push(decode_record(line, idx + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ua: &str, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_date(2025, 2, 12),
            ip_hash: 0xABCD,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 512,
            referer: None,
        }
    }

    #[test]
    fn roundtrip_simple() {
        let records = vec![sample("GPTBot/1.0", "/a"), sample("bingbot/2.0", "/b")];
        let text = encode(&records);
        let back = decode(&text).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn roundtrip_with_quoting() {
        let mut r = sample("Mozilla/5.0 (compatible; X, \"quoted\"; +http://x)", "/q");
        r.referer = Some("https://ref.example/with,comma".into());
        let text = encode(&[r.clone()]);
        let back = decode(&text).unwrap();
        assert_eq!(back, vec![r]);
    }

    #[test]
    fn empty_dataset() {
        assert_eq!(decode("").unwrap(), vec![]);
        let enc = encode(&[]);
        assert_eq!(decode(&enc).unwrap(), vec![]);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(decode("nope\n").is_err());
    }

    #[test]
    fn bad_fields_rejected() {
        let good = encode(&[sample("a", "/")]);
        let mut lines: Vec<&str> = good.lines().collect();
        let tampered = lines[1].replace("2025-02-12T00:00:00Z", "not-a-time");
        lines[1] = &tampered;
        let text = lines.join("\n");
        let e = decode(&text).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn field_count_enforced() {
        let text = format!("{HEADER}\nonly,three,fields\n");
        let e = decode(&text).unwrap_err();
        assert!(e.message.contains("9 fields"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let text = format!("{HEADER}\n\"unterminated,2025-02-12T00:00:00Z,0,a,b,/,200,1,\n");
        assert!(decode(&text).is_err());
    }

    #[test]
    fn ip_hash_is_hex() {
        let r = sample("x", "/");
        let line = encode_record(&r);
        assert!(line.contains("000000000000abcd"));
    }
}

//! In-memory log store with the groupings the compliance metrics need.
//!
//! The §4.2 metrics stratify accesses "into sets of accesses associated
//! with a unique triple τᵢ = (ASN, IP hash, user-agent)" and then also
//! aggregate per user agent. `LogStore` owns a record set and serves both
//! groupings with deterministic ordering.

use std::collections::BTreeMap;

use crate::record::AccessRecord;
use crate::time::Timestamp;

/// An owned, sorted collection of access records.
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    records: Vec<AccessRecord>,
}

impl LogStore {
    /// Build a store; records are sorted by (time, user agent, IP hash)
    /// for determinism.
    pub fn new(mut records: Vec<AccessRecord>) -> Self {
        records.sort_by(|a, b| {
            (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
                b.timestamp,
                &b.useragent,
                b.ip_hash,
                &b.uri_path,
            ))
        });
        Self { records }
    }

    /// The records, time-sorted.
    pub fn records(&self) -> &[AccessRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Earliest and latest timestamps, if any records exist.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        Some((self.records.first()?.timestamp, self.records.last()?.timestamp))
    }

    /// Group record indices by τ-tuple (ASN, IP hash, user agent).
    /// Within each group, indices are in time order. BTreeMap keys give a
    /// deterministic iteration order.
    pub fn by_tau(&self) -> BTreeMap<(String, u64, String), Vec<&AccessRecord>> {
        let mut map: BTreeMap<(String, u64, String), Vec<&AccessRecord>> = BTreeMap::new();
        for r in &self.records {
            map.entry(r.tau()).or_default().push(r);
        }
        map
    }

    /// Group records by raw user-agent string.
    pub fn by_useragent(&self) -> BTreeMap<String, Vec<&AccessRecord>> {
        let mut map: BTreeMap<String, Vec<&AccessRecord>> = BTreeMap::new();
        for r in &self.records {
            map.entry(r.useragent.clone()).or_default().push(r);
        }
        map
    }

    /// The robots.txt fetch times (unix secs) per user agent.
    pub fn robots_checks_by_useragent(&self) -> BTreeMap<String, Vec<u64>> {
        let mut map: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for r in &self.records {
            if r.is_robots_fetch() {
                map.entry(r.useragent.clone()).or_default().push(r.timestamp.unix());
            }
        }
        map
    }

    /// Append records (store re-sorts).
    pub fn extend(&mut self, more: Vec<AccessRecord>) {
        self.records.extend(more);
        self.records.sort_by(|a, b| {
            (a.timestamp, &a.useragent, a.ip_hash, &a.uri_path).cmp(&(
                b.timestamp,
                &b.useragent,
                b.ip_hash,
                &b.uri_path,
            ))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ua: &str, ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    #[test]
    fn sorting_and_bounds() {
        let store =
            LogStore::new(vec![rec("b", 1, 50, "/"), rec("a", 1, 10, "/"), rec("c", 1, 99, "/")]);
        assert_eq!(store.len(), 3);
        let (lo, hi) = store.time_bounds().unwrap();
        assert_eq!(lo.unix(), 10);
        assert_eq!(hi.unix(), 99);
        assert!(store.records().windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
    }

    #[test]
    fn tau_grouping() {
        let store = LogStore::new(vec![
            rec("a", 1, 0, "/x"),
            rec("a", 1, 5, "/y"),
            rec("a", 2, 0, "/x"),
            rec("b", 1, 0, "/x"),
        ]);
        let groups = store.by_tau();
        assert_eq!(groups.len(), 3);
        let key = ("GOOGLE".to_string(), 1u64, "a".to_string());
        assert_eq!(groups[&key].len(), 2);
        // Time order within group.
        assert!(groups[&key][0].timestamp <= groups[&key][1].timestamp);
    }

    #[test]
    fn useragent_grouping() {
        let store =
            LogStore::new(vec![rec("a", 1, 0, "/"), rec("a", 2, 1, "/"), rec("b", 3, 2, "/")]);
        let groups = store.by_useragent();
        assert_eq!(groups["a"].len(), 2);
        assert_eq!(groups["b"].len(), 1);
    }

    #[test]
    fn robots_checks() {
        let store = LogStore::new(vec![
            rec("a", 1, 10, "/robots.txt"),
            rec("a", 1, 20, "/page"),
            rec("a", 1, 30, "/robots.txt"),
            rec("b", 2, 5, "/page"),
        ]);
        let checks = store.robots_checks_by_useragent();
        assert_eq!(checks["a"], vec![10, 30]);
        assert!(!checks.contains_key("b"));
    }

    #[test]
    fn extend_resorts() {
        let mut store = LogStore::new(vec![rec("a", 1, 100, "/")]);
        store.extend(vec![rec("a", 1, 1, "/")]);
        assert_eq!(store.records()[0].timestamp.unix(), 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn empty_store() {
        let store = LogStore::default();
        assert!(store.is_empty());
        assert!(store.time_bounds().is_none());
        assert!(store.by_tau().is_empty());
    }
}

//! Dataset overview statistics (paper Table 2).
//!
//! Table 2 reports, for the full dataset and for the known-bot subset:
//! unique IP addresses, unique user agents, average bytes scraped per
//! session, unique ASNs, total bytes scraped, total page visits (the
//! session-collapsed row count) and unique page visits (distinct URLs).

use std::collections::{HashMap, HashSet};

use crate::record::AccessRecord;
use crate::session::{sessionize, SESSION_GAP_SECS};
use crate::table::LogTable;

/// The Table 2 row.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Distinct IP hashes.
    pub unique_ips: usize,
    /// Distinct raw user-agent strings.
    pub unique_user_agents: usize,
    /// Mean bytes per session.
    pub avg_bytes_per_session: f64,
    /// Distinct ASNs.
    pub unique_asns: usize,
    /// Total bytes transferred.
    pub total_bytes: u64,
    /// Number of sessions (the paper's "total page visits" after
    /// session-collapsing).
    pub total_page_visits: usize,
    /// Distinct (sitename, path) URLs.
    pub unique_page_visits: usize,
    /// Raw (pre-sessionization) record count.
    pub raw_records: usize,
}

impl DatasetSummary {
    /// Compute the summary over a record set using the paper's 5-minute
    /// session gap.
    pub fn compute(records: &[AccessRecord]) -> DatasetSummary {
        Self::compute_with_gap(records, SESSION_GAP_SECS)
    }

    /// Compute with a custom session gap (used by the ablation bench).
    pub fn compute_with_gap(records: &[AccessRecord], gap_secs: u64) -> DatasetSummary {
        let mut ips: HashSet<u64> = HashSet::new();
        let mut uas: HashSet<&str> = HashSet::new();
        let mut asns: HashSet<&str> = HashSet::new();
        let mut urls: HashSet<(&str, &str)> = HashSet::new();
        let mut total_bytes = 0u64;
        for r in records {
            ips.insert(r.ip_hash);
            uas.insert(&r.useragent);
            asns.insert(&r.asn);
            urls.insert((&r.sitename, &r.uri_path));
            total_bytes += r.bytes;
        }
        let sessions = sessionize(records, gap_secs);
        let avg =
            if sessions.is_empty() { 0.0 } else { total_bytes as f64 / sessions.len() as f64 };
        DatasetSummary {
            unique_ips: ips.len(),
            unique_user_agents: uas.len(),
            avg_bytes_per_session: avg,
            unique_asns: asns.len(),
            total_bytes,
            total_page_visits: sessions.len(),
            unique_page_visits: urls.len(),
            raw_records: records.len(),
        }
    }

    /// Row-native equivalent of [`DatasetSummary::compute`]: all unique
    /// counts are taken over interned symbols, and sessions are counted
    /// without materializing them.
    pub fn compute_table(table: &LogTable) -> DatasetSummary {
        Self::compute_table_with_gap(table, SESSION_GAP_SECS)
    }

    /// [`DatasetSummary::compute_table`] with a custom session gap.
    pub fn compute_table_with_gap(table: &LogTable, gap_secs: u64) -> DatasetSummary {
        Self::compute_rows_with_gap(table.rows().iter(), gap_secs)
    }

    /// Summary over an arbitrary row subset of a table (rows must share
    /// one interner; unique UA/ASN/URL counts are symbol-keyed).
    pub fn compute_rows_with_gap<'t>(
        rows: impl IntoIterator<Item = &'t crate::table::RecordRow>,
        gap_secs: u64,
    ) -> DatasetSummary {
        assert!(gap_secs > 0, "session gap must be positive");
        let mut ips: HashSet<u64> = HashSet::new();
        let mut uas: HashSet<crate::intern::Sym> = HashSet::new();
        let mut asns: HashSet<crate::intern::Sym> = HashSet::new();
        let mut urls: HashSet<(crate::intern::Sym, crate::intern::Sym)> = HashSet::new();
        let mut by_entity: HashMap<(crate::intern::Sym, u64, crate::intern::Sym), Vec<u64>> =
            HashMap::new();
        let mut total_bytes = 0u64;
        let mut raw_records = 0usize;
        for row in rows {
            raw_records += 1;
            ips.insert(row.ip_hash);
            uas.insert(row.useragent);
            asns.insert(row.asn);
            urls.insert((row.sitename, row.uri_path));
            total_bytes += row.bytes;
            by_entity
                .entry((row.useragent, row.ip_hash, row.asn))
                .or_default()
                .push(row.timestamp.unix());
        }
        let sessions = crate::table::count_entity_sessions(by_entity, gap_secs);
        let avg = if sessions == 0 { 0.0 } else { total_bytes as f64 / sessions as f64 };
        DatasetSummary {
            unique_ips: ips.len(),
            unique_user_agents: uas.len(),
            avg_bytes_per_session: avg,
            unique_asns: asns.len(),
            total_bytes,
            total_page_visits: sessions,
            unique_page_visits: urls.len(),
            raw_records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn rec(ua: &str, ip: u64, asn: &str, t: u64, path: &str, bytes: u64) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: asn.into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes,
            referer: None,
        }
    }

    #[test]
    fn empty_dataset() {
        let s = DatasetSummary::compute(&[]);
        assert_eq!(s.unique_ips, 0);
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.avg_bytes_per_session, 0.0);
        assert_eq!(s.total_page_visits, 0);
    }

    #[test]
    fn counts() {
        let records = vec![
            rec("a", 1, "GOOGLE", 0, "/x", 100),
            rec("a", 1, "GOOGLE", 60, "/y", 100),
            rec("b", 2, "OVH", 0, "/x", 300),
        ];
        let s = DatasetSummary::compute(&records);
        assert_eq!(s.unique_ips, 2);
        assert_eq!(s.unique_user_agents, 2);
        assert_eq!(s.unique_asns, 2);
        assert_eq!(s.total_bytes, 500);
        assert_eq!(s.raw_records, 3);
        assert_eq!(s.unique_page_visits, 2); // /x and /y
        assert_eq!(s.total_page_visits, 2); // two sessions
        assert!((s.avg_bytes_per_session - 250.0).abs() < 1e-9);
    }

    #[test]
    fn table_summary_matches_record_summary() {
        let records = vec![
            rec("a", 1, "GOOGLE", 0, "/x", 100),
            rec("a", 1, "GOOGLE", 60, "/y", 100),
            rec("a", 1, "GOOGLE", 10_000, "/y", 50),
            rec("b", 2, "OVH", 0, "/x", 300),
        ];
        let table = LogTable::from_records(&records);
        assert_eq!(DatasetSummary::compute_table(&table), DatasetSummary::compute(&records));
        assert_eq!(
            DatasetSummary::compute_table_with_gap(&table, 20_000),
            DatasetSummary::compute_with_gap(&records, 20_000)
        );
        assert_eq!(DatasetSummary::compute_table(&LogTable::new()), DatasetSummary::compute(&[]));
    }

    #[test]
    fn session_gap_changes_visit_count() {
        // Two accesses 10 minutes apart: one session with a 15-minute gap,
        // two with the paper's 5-minute gap.
        let records = vec![rec("a", 1, "GOOGLE", 0, "/x", 1), rec("a", 1, "GOOGLE", 600, "/y", 1)];
        assert_eq!(DatasetSummary::compute(&records).total_page_visits, 2);
        assert_eq!(DatasetSummary::compute_with_gap(&records, 900).total_page_visits, 1);
    }
}

//! Property-based tests for the web-log substrate.

use botscope_weblog::codec::{
    decode, decode_stream, decode_table, decode_table_read, encode, HEADER,
};
use botscope_weblog::colfmt;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::sessionize;
use botscope_weblog::sink::RowSink;
use botscope_weblog::summary::DatasetSummary;
use botscope_weblog::table::LogTable;
use botscope_weblog::time::Timestamp;
use proptest::prelude::*;

/// `decode_stream` (and the table decoders) must agree with `decode` on
/// any input: same records on success, same first error on failure.
/// Panics on disagreement (the proptest macro reports the inputs).
fn check_stream_equivalence(text: &str) {
    let full = decode(text);
    let mut streamed: Vec<AccessRecord> = Vec::new();
    let mut stream_err = None;
    for item in decode_stream(text) {
        match item {
            Ok(r) => streamed.push(r),
            Err(e) => {
                stream_err = Some(e);
                break;
            }
        }
    }
    let table = decode_table(text);
    let table_read = decode_table_read(text.as_bytes());
    match full {
        Ok(records) => {
            assert_eq!(stream_err, None);
            assert_eq!(streamed, records);
            assert_eq!(table.expect("decode succeeded").to_records(), records);
            assert_eq!(table_read.expect("decode succeeded").to_records(), records);
        }
        Err(e) => {
            assert_eq!(stream_err.as_ref(), Some(&e));
            assert_eq!(table.expect_err("decode failed"), e.clone());
            // The reader path trims a trailing '\r' that str::lines also
            // strips, so its errors match the in-memory path as well.
            assert_eq!(table_read.expect_err("decode failed"), e);
        }
    }
}

/// Arbitrary record with adversarial string fields.
fn record_strategy() -> impl Strategy<Value = AccessRecord> {
    (
        "[ -~]{0,60}",         // useragent: printable ASCII incl. quotes/commas
        0u64..4_102_444_800,   // timestamp: epoch..2100
        any::<u64>(),          // ip hash
        "[A-Za-z0-9_-]{1,24}", // asn
        "[a-z0-9.-]{1,30}",    // sitename
        "/[ -~]{0,40}",        // path
        100u16..600,           // status
        0u64..10_000_000,      // bytes
        proptest::option::of("[ -~]{1,40}"),
    )
        .prop_map(
            |(useragent, secs, ip_hash, asn, sitename, uri_path, status, bytes, referer)| {
                AccessRecord {
                    useragent,
                    timestamp: Timestamp::from_unix(secs),
                    ip_hash,
                    asn,
                    sitename,
                    uri_path,
                    status,
                    bytes,
                    referer,
                }
            },
        )
}

proptest! {
    #[test]
    fn csv_roundtrip(records in prop::collection::vec(record_strategy(), 0..30)) {
        // Fields containing raw newlines can't survive a line-oriented
        // format unquoted; our strategy avoids them, quoting handles the
        // rest (commas, quotes).
        let text = encode(&records);
        let back = decode(&text).expect("decode what we encoded");
        prop_assert_eq!(back, records);
    }

    #[test]
    fn stream_decode_equivalent_on_valid_logs(
        records in prop::collection::vec(record_strategy(), 0..30),
    ) {
        let text = encode(&records);
        let streamed: Result<Vec<AccessRecord>, _> = decode_stream(&text).collect();
        prop_assert_eq!(streamed.expect("own encoding decodes"), records.clone());
        // The interned table path agrees too.
        let table = decode_table(&text).expect("own encoding decodes");
        prop_assert_eq!(table.to_records(), records.clone());
        let table = decode_table_read(text.as_bytes()).expect("own encoding decodes");
        prop_assert_eq!(table.to_records(), records);
    }

    #[test]
    fn stream_decode_equivalent_on_arbitrary_text(text in "[ -~\n]{0,500}") {
        check_stream_equivalence(&text);
    }

    #[test]
    fn stream_decode_equivalent_on_headered_garbage(
        lines in prop::collection::vec("[ -~]{0,60}", 0..20),
    ) {
        // A valid header followed by arbitrary body lines: exercises the
        // per-record error paths rather than the header check.
        let text = format!("{HEADER}\n{}", lines.join("\n"));
        check_stream_equivalence(&text);
    }

    #[test]
    fn stream_decode_equivalent_on_tampered_logs(
        records in prop::collection::vec(record_strategy(), 1..15),
        pos in 0usize..100_000,
        byte in 0x20u8..0x7F,
    ) {
        // Flip one byte of a valid log: decode and decode_stream must
        // still agree on the outcome, whatever it is.
        let mut text = encode(&records).into_bytes();
        let at = pos % text.len();
        text[at] = byte;
        if let Ok(text) = String::from_utf8(text) {
            check_stream_equivalence(&text);
        }
    }

    #[test]
    fn table_agrees_with_record_apis(
        records in prop::collection::vec(record_strategy(), 0..50),
        gap in 1u64..50_000,
    ) {
        // The interned representation is behaviourally identical to the
        // record one: roundtrip, sessionization, and summary all agree.
        let table = LogTable::from_records(&records);
        prop_assert_eq!(table.to_records(), records.clone());
        prop_assert_eq!(table.sessionize(gap), sessionize(&records, gap));
        prop_assert_eq!(
            DatasetSummary::compute_table_with_gap(&table, gap),
            DatasetSummary::compute_with_gap(&records, gap)
        );
    }

    #[test]
    fn timestamp_roundtrip(secs in 0u64..4_102_444_800) {
        let t = Timestamp::from_unix(secs);
        let parsed = Timestamp::parse_iso8601(&t.to_iso8601()).expect("own output parses");
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn civil_fields_in_range(secs in 0u64..4_102_444_800) {
        let c = Timestamp::from_unix(secs).civil();
        prop_assert!((1..=12).contains(&c.month));
        prop_assert!((1..=31).contains(&c.day));
        prop_assert!(c.hour < 24 && c.minute < 60 && c.second < 60);
        prop_assert!((1970..=2100).contains(&c.year));
    }

    #[test]
    fn sessionize_conserves_accesses_and_bytes(
        records in prop::collection::vec(record_strategy(), 0..60),
        gap in 1u64..100_000,
    ) {
        let sessions = sessionize(&records, gap);
        let total_accesses: u64 = sessions.iter().map(|s| s.accesses).sum();
        prop_assert_eq!(total_accesses, records.len() as u64);
        let total_bytes: u64 = sessions.iter().map(|s| s.bytes).sum();
        let expect: u64 = records.iter().map(|r| r.bytes).sum();
        prop_assert_eq!(total_bytes, expect);
    }

    #[test]
    fn sessionize_monotone_in_gap(
        records in prop::collection::vec(record_strategy(), 0..60),
        gap in 1u64..50_000,
    ) {
        // A larger gap can only merge sessions, never split them.
        let small = sessionize(&records, gap).len();
        let large = sessionize(&records, gap * 2).len();
        prop_assert!(large <= small, "gap {gap}: {small} vs {large}");
    }

    #[test]
    fn sessions_never_cross_entities(
        records in prop::collection::vec(record_strategy(), 0..40),
    ) {
        for s in sessionize(&records, 300) {
            let members: Vec<&AccessRecord> = records
                .iter()
                .filter(|r| {
                    r.useragent == s.useragent && r.ip_hash == s.ip_hash && r.asn == s.asn
                })
                .collect();
            prop_assert!(s.accesses as usize <= members.len());
        }
    }

    #[test]
    fn table_views_partition_the_rows(
        records in prop::collection::vec(record_strategy(), 0..50),
    ) {
        // by_tau and by_useragent are partitions of the row set, keyed
        // and ordered deterministically; τ groups agree with the
        // record-level τ-tuple.
        let table = LogTable::from_records(&records);
        let tau_groups = table.by_tau();
        let grouped: usize = tau_groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(grouped, records.len());
        prop_assert!(tau_groups.windows(2).all(|w| w[0].0 < w[1].0), "τ keys sorted + unique");
        for ((asn, ip, ua), rows) in &tau_groups {
            for row in rows {
                let r = table.materialize(row);
                prop_assert_eq!(r.tau_ref(), (*asn, *ip, *ua));
            }
        }
        let ua_groups = table.by_useragent();
        let grouped: usize = ua_groups.iter().map(|(_, v)| v.len()).sum();
        prop_assert_eq!(grouped, records.len());
        prop_assert!(ua_groups.windows(2).all(|w| w[0].0 < w[1].0));
        // Every robots.txt fetch lands in the robots-times view.
        let robots_total: usize =
            table.robots_checks_by_useragent().values().map(std::vec::Vec::len).sum();
        let expect = records.iter().filter(|r| r.is_robots_fetch()).count();
        prop_assert_eq!(robots_total, expect);
    }

    #[test]
    fn binary_roundtrip_matches_csv_and_table(
        records in prop::collection::vec(record_strategy(), 0..40),
    ) {
        let table = LogTable::from_records(&records);

        // Materialized writer (full dictionary up front, ids preserved).
        let mut bin = Vec::new();
        colfmt::write_table(&mut bin, &table).expect("encode binary");
        let back = colfmt::read_table(&bin[..]).expect("decode own binary");
        prop_assert_eq!(back.to_records(), records.clone());

        // Streaming writer (dictionary deltas, sink-side re-interning).
        let mut sink = colfmt::BinSink::new(Vec::new()).expect("bin sink");
        for r in &records {
            sink.write_row(r).expect("write row");
        }
        sink.finish().expect("finish");
        let streamed_bytes = sink.into_inner();
        let back = colfmt::read_table(&streamed_bytes[..]).expect("decode streamed binary");
        prop_assert_eq!(back.to_records(), records.clone());

        // Row-by-row reader agrees with the CSV round trip record for
        // record (interner remapping included: the reader builds its
        // own dictionary, so symbol ids need not match the writer's).
        let csv = encode(&records);
        let from_csv = decode(&csv).expect("decode own CSV");
        let mut reader = colfmt::BinReader::new(&bin[..]).expect("binary header");
        let mut from_bin = Vec::new();
        while let Some(row) = reader.next_row() {
            let row = row.expect("clean row");
            let i = reader.interner();
            from_bin.push(AccessRecord {
                useragent: i.resolve(row.useragent).to_string(),
                timestamp: row.timestamp,
                ip_hash: row.ip_hash,
                asn: i.resolve(row.asn).to_string(),
                sitename: i.resolve(row.sitename).to_string(),
                uri_path: i.resolve(row.uri_path).to_string(),
                status: row.status,
                bytes: row.bytes,
                referer: row.referer.map(|s| i.resolve(s).to_string()),
            });
        }
        prop_assert_eq!(from_bin, from_csv);
    }

    #[test]
    fn binary_concatenated_chunks_roundtrip(
        a in prop::collection::vec(record_strategy(), 0..20),
        b in prop::collection::vec(record_strategy(), 0..20),
    ) {
        // Two chunks through one sink exercise dictionary-delta pages:
        // chunk b's new strings arrive in a later dict page and must
        // remap onto the reader's interner cleanly.
        let mut sink = colfmt::BinSink::new(Vec::new()).expect("bin sink").with_page_rows(7);
        for r in a.iter().chain(&b) {
            sink.write_row(r).expect("write row");
        }
        sink.finish().expect("finish");
        let bytes = sink.into_inner();
        let back = colfmt::read_table(&bytes[..]).expect("decode");
        let expect: Vec<AccessRecord> = a.into_iter().chain(b).collect();
        prop_assert_eq!(back.to_records(), expect);
    }

    #[test]
    fn binary_mutation_never_panics(
        records in prop::collection::vec(record_strategy(), 1..15),
        pos in 0usize..100_000,
        byte in any::<u8>(),
    ) {
        // Flip one byte anywhere in a valid binary log: decoding must
        // return clean records or a DecodeError — never panic, and
        // never allocate from a hostile length field.
        let table = LogTable::from_records(&records);
        let mut bytes = Vec::new();
        colfmt::write_table(&mut bytes, &table).expect("encode binary");
        let at = pos % bytes.len();
        bytes[at] = byte;
        match colfmt::read_table(&bytes[..]) {
            Ok(table) => prop_assert!(table.len() <= records.len() + bytes.len()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        // The raw (dictionary-skipping) reader must be just as safe.
        match colfmt::BinReader::new_raw(&bytes[..]) {
            Err(e) => prop_assert!(!e.to_string().is_empty()),
            Ok(mut raw) => {
                let mut n = 0usize;
                while let Some(row) = raw.next_row() {
                    match row {
                        Ok(_) => n += 1,
                        Err(e) => {
                            prop_assert!(!e.to_string().is_empty());
                            break;
                        }
                    }
                }
                prop_assert!(n <= records.len() + bytes.len());
            }
        }
    }

    #[test]
    fn binary_truncation_never_panics(
        records in prop::collection::vec(record_strategy(), 1..15),
        keep in 0usize..100_000,
    ) {
        // Any prefix of a valid binary log decodes cleanly or fails
        // with a DecodeError mentioning truncation — never a panic.
        let table = LogTable::from_records(&records);
        let mut bytes = Vec::new();
        colfmt::write_table(&mut bytes, &table).expect("encode binary");
        bytes.truncate(keep % (bytes.len() + 1));
        match colfmt::read_table(&bytes[..]) {
            Ok(table) => prop_assert!(table.len() <= records.len()),
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
    }

    #[test]
    fn csv_decode_errors_carry_one_based_line_numbers(
        records in prop::collection::vec(record_strategy(), 0..12),
        at in 0usize..13,
    ) {
        // Insert one malformed body line into a valid log: the reported
        // line number must point at it exactly, counting the header as
        // line 1.
        let at = at.min(records.len());
        let mut lines: Vec<String> = encode(&records).lines().map(String::from).collect();
        lines.insert(1 + at, "not,a,record".into());
        let text = lines.join("\n");
        let err = decode(&text).expect_err("malformed line must fail");
        prop_assert_eq!(err.line, 1 + at + 1, "header is line 1, body starts at 2");
        let err_read = decode_table_read(text.as_bytes()).expect_err("reader path too");
        prop_assert_eq!(err_read.line, err.line);
    }

    #[test]
    fn summary_counts_bounded_by_records(
        records in prop::collection::vec(record_strategy(), 0..50),
    ) {
        let s = DatasetSummary::compute(&records);
        prop_assert!(s.unique_ips <= records.len());
        prop_assert!(s.unique_user_agents <= records.len());
        prop_assert!(s.unique_asns <= records.len());
        prop_assert!(s.total_page_visits <= records.len());
        prop_assert!(s.unique_page_visits <= records.len());
        prop_assert_eq!(s.raw_records, records.len());
        prop_assert_eq!(s.total_bytes, records.iter().map(|r| r.bytes).sum::<u64>());
    }
}

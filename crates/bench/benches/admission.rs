//! Criterion benches for the batch "may-I-crawl" admission path: raw
//! compiled-automaton checks, the `check_many` bitmask batch, and the
//! site-keyed [`PolicyEstate`] serving layer — per-check throughput is
//! the headline number (`BENCH_admission.json`), with the one-time
//! compile cost alongside so the amortization math stays visible.
//!
//! [`PolicyEstate`]: botscope_robotstxt::PolicyEstate

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use botscope_robotstxt::{CompiledPolicy, PolicyEstate};
use botscope_simnet::phases::PolicyVersion;

/// A representative admission workload over the paper's v2 policy:
/// allowed page-data endpoints, denied content paths, the implicit
/// robots.txt allowance, and exempt-agent traffic.
fn workload() -> (Vec<String>, Vec<&'static str>) {
    let mut paths = Vec::new();
    for i in 0..256 {
        paths.push(format!("/page-data/item-{i:03}/page-data.json"));
        paths.push(format!("/news/item-{i:03}"));
        paths.push(format!("/people/person-{i:04}"));
        if i % 64 == 0 {
            paths.push("/robots.txt".to_string());
        }
    }
    let agents = vec!["GPTBot", "Googlebot", "ClaudeBot", "unknown-bot"];
    (paths, agents)
}

fn bench_admission(c: &mut Criterion) {
    let (paths, agents) = workload();
    let path_refs: Vec<&str> = paths.iter().map(String::as_str).collect();
    let compiled = CompiledPolicy::compile(&PolicyVersion::V2EndpointOnly.robots_txt());

    let mut g = c.benchmark_group("admission");

    // Single-check loop: one automaton, the full (agent × path) grid.
    let grid = (agents.len() * path_refs.len()) as u64;
    g.throughput(Throughput::Elements(grid));
    g.bench_function("check_grid", |b| {
        b.iter(|| {
            let mut allowed = 0u64;
            for agent in &agents {
                for path in &path_refs {
                    allowed += u64::from(compiled.check(black_box(agent), black_box(path)).allow);
                }
            }
            allowed
        });
    });

    // The batch bitmask path: agent resolved once, paths streamed.
    g.throughput(Throughput::Elements(path_refs.len() as u64));
    g.bench_function("check_many", |b| {
        b.iter(|| compiled.check_many(black_box("GPTBot"), black_box(&path_refs)));
    });

    // The serving layer: site-keyed dispatch over a warm 36-site
    // estate, queries striped across sites like `botscope admit` sees.
    let sites: Vec<String> = (0..36).map(|i| format!("site-{i:02}.example.edu")).collect();
    let mut estate = PolicyEstate::new();
    for (i, site) in sites.iter().enumerate() {
        estate.insert(site, PolicyVersion::ALL[i % 4].robots_txt());
    }
    for site in &sites {
        estate.check(site, "GPTBot", "/robots.txt");
    }
    g.throughput(Throughput::Elements(path_refs.len() as u64));
    g.bench_function("estate_hot_36_sites", |b| {
        b.iter(|| {
            let mut allowed = 0u64;
            for (i, path) in path_refs.iter().enumerate() {
                let site = &sites[i % sites.len()];
                let agent = agents[i % agents.len()];
                allowed +=
                    u64::from(estate.check(black_box(site), agent, black_box(path)).unwrap());
            }
            allowed
        });
    });

    // Cold start: register + lazily compile the whole estate, one check
    // per site — what a monitoring pass's invalidations cost to re-warm.
    g.throughput(Throughput::Elements(sites.len() as u64));
    g.bench_function("estate_cold_compile_36_sites", |b| {
        b.iter_batched(
            || {
                let mut estate = PolicyEstate::new();
                for (i, site) in sites.iter().enumerate() {
                    estate.insert(site, PolicyVersion::ALL[i % 4].robots_txt());
                }
                estate
            },
            |mut estate| {
                let mut allowed = 0u64;
                for site in &sites {
                    allowed += u64::from(estate.check(site, "GPTBot", "/news/item-001").unwrap());
                }
                (allowed, estate)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);

//! Criterion benches for the telemetry substrate itself: the cost of
//! an instrumented hot path must stay invisible. Targets: a counter
//! increment ≤ 5 ns with the registry disabled, a full span
//! open+close ≤ 50 ns enabled (no trace sink attached, the production
//! shape for `--metrics` without `--trace`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use botscope_obs::{Registry, DURATION_NS_BOUNDS};

fn counters(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(1));

    let disabled = Registry::new();
    let counter = disabled.counter("bench_total");
    g.bench_function("counter_disabled", |b| b.iter(|| counter.incr()));

    let enabled = Registry::new();
    enabled.set_enabled(true);
    let counter = enabled.counter("bench_total");
    g.bench_function("counter_enabled", |b| b.iter(|| counter.incr()));

    g.finish();
}

fn spans(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(1));

    let disabled = Registry::new();
    g.bench_function("span_disabled", |b| b.iter(|| drop(disabled.span("bench_span"))));

    let enabled = Registry::new();
    enabled.set_enabled(true);
    g.bench_function("span_enabled", |b| b.iter(|| drop(enabled.span("bench_span"))));

    g.finish();
}

fn histograms(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    g.throughput(Throughput::Elements(1));

    let registry = Registry::new();
    registry.set_enabled(true);
    let h = registry.histogram("bench_ns", DURATION_NS_BOUNDS);
    let mut v: u64 = 1;
    g.bench_function("histogram_record", |b| {
        b.iter(|| {
            // Walk the value so successive records land in different
            // buckets rather than pinning one cache line.
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            h.record(black_box(v >> 34));
        });
    });

    g.finish();
}

criterion_group!(benches, counters, spans, histograms);
criterion_main!(benches);

//! Ablation benches for the design choices DESIGN.md §5 calls out.
//!
//! These are correctness-shaped ablations wrapped in Criterion so their
//! outputs land in the bench log: each run prints the quantity that
//! changes (decision flips, session counts, flagged bots) alongside the
//! timing, demonstrating *why* the paper's choice matters. All dataset
//! ablations run on the interned [`LogTable`] API — the native path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use botscope_core::metrics::{crawl_delay_by_useragent, crawl_delay_counts_rows};
use botscope_core::pipeline::standardize_table;
use botscope_core::spoofdetect::detect_rows_with;
use botscope_robotstxt::{RobotsTxt, RuleVerb};
use botscope_simnet::scenario::full_study_table;
use botscope_simnet::SimConfig;
use botscope_weblog::table::LogTable;

fn dataset() -> LogTable {
    let cfg = SimConfig { days: 10, scale: 0.05, ..SimConfig::default() };
    full_study_table(&cfg).table
}

/// Ablation 1: RFC 9309 longest-match precedence vs naive first-match.
fn ablation_match_precedence(c: &mut Criterion) {
    let doc = RobotsTxt::parse(
        "User-agent: *\nDisallow: /\nAllow: /page-data/*\nAllow: /news/\nDisallow: /news/private\n",
    );
    let paths = ["/page-data/x.json", "/news/item", "/news/private/x", "/other"];

    // First-match semantics: the first rule in file order that matches.
    let first_match = |path: &str| -> bool {
        let (_, rules) = doc.applicable_rules("bot").expect("wildcard group");
        for rule in rules {
            if rule.pattern.matches(path) {
                return rule.verb == RuleVerb::Allow;
            }
        }
        true
    };

    let flips: usize =
        paths.iter().filter(|p| doc.is_allowed("bot", p).allow != first_match(p)).count();
    println!("[ablation] longest-match vs first-match decision flips: {flips}/{}", paths.len());

    let mut g = c.benchmark_group("ablation_precedence");
    g.bench_function("longest_match_rfc9309", |b| {
        b.iter(|| paths.iter().filter(|p| doc.is_allowed("bot", black_box(p)).allow).count());
    });
    g.bench_function("first_match_naive", |b| {
        b.iter(|| paths.iter().filter(|p| first_match(black_box(p))).count());
    });
    g.finish();
}

/// Ablation 2: τ-tuple stratification vs naive per-UA pooling for the
/// crawl-delay metric.
fn ablation_tau_stratification(c: &mut Criterion) {
    let table = dataset();
    let logs = standardize_table(&table);
    let busiest = logs.bots.values().max_by_key(|v| v.rows.len()).expect("non-empty").rows.clone();

    // Naive pooling: sort all of the bot's accesses together regardless
    // of requesting IP/ASN/raw agent and measure deltas across
    // interleaved clients.
    let naive = |rows: &[&botscope_weblog::table::RecordRow]| {
        let mut times: Vec<u64> = rows.iter().map(|r| r.timestamp.unix()).collect();
        times.sort_unstable();
        let mut ok = 0u64;
        let mut n = 0u64;
        for w in times.windows(2) {
            n += 1;
            if w[1] - w[0] >= 30 {
                ok += 1;
            }
        }
        (ok, n.max(1))
    };

    let strat = crawl_delay_counts_rows(&busiest, 30);
    let (nok, nn) = naive(&busiest);
    println!(
        "[ablation] crawl-delay ratio stratified={:.3} pooled={:.3} (pooling corrupts the measure when a bot crawls from many IPs)",
        strat.ratio().unwrap_or(0.0),
        nok as f64 / nn as f64,
    );
    // The per-raw-agent convenience view covers the whole estate.
    let per_ua = crawl_delay_by_useragent(&table, 30);
    println!("[ablation] per-raw-agent crawl-delay groups: {}", per_ua.len());

    let mut g = c.benchmark_group("ablation_tau");
    g.bench_function("tau_stratified", |b| {
        b.iter(|| crawl_delay_counts_rows(black_box(&busiest), 30));
    });
    g.bench_function("naive_pooled", |b| b.iter(|| naive(black_box(&busiest))));
    g.finish();
}

/// Ablation 3: sessionization-gap sweep (paper uses 5 minutes).
fn ablation_session_gap(c: &mut Criterion) {
    let table = dataset();
    let mut g = c.benchmark_group("ablation_session_gap");
    g.sample_size(10);
    for &gap_min in &[1u64, 5, 15, 60] {
        let sessions = table.sessionize(gap_min * 60).len();
        println!("[ablation] session gap {gap_min}min -> {sessions} sessions");
        g.bench_with_input(BenchmarkId::from_parameter(gap_min), &gap_min, |b, &gap| {
            b.iter(|| black_box(&table).sessionize(gap * 60).len());
        });
    }
    g.finish();
}

/// Ablation 4: spoof-dominance threshold sweep (paper uses 90 %, §5.2
/// calls the choice "somewhat arbitrary").
fn ablation_spoof_threshold(c: &mut Criterion) {
    let table = dataset();
    let logs = standardize_table(&table);
    let per_bot = logs.per_bot_rows();
    let mut g = c.benchmark_group("ablation_spoof_threshold");
    for &threshold in &[0.5f64, 0.75, 0.9, 0.99] {
        let flagged = detect_rows_with(&table, &per_bot, threshold, 10).findings.len();
        println!("[ablation] dominance threshold {threshold} -> {flagged} flagged bots");
        g.bench_with_input(BenchmarkId::from_parameter(threshold), &threshold, |b, &t| {
            b.iter(|| detect_rows_with(&table, black_box(&per_bot), t, 10).findings.len());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_match_precedence,
    ablation_tau_stratification,
    ablation_session_gap,
    ablation_spoof_threshold
);
criterion_main!(benches);

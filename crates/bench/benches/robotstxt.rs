//! Criterion benches for the RFC 9309 substrate: parse and match
//! throughput on the study's own policy files and on a large synthetic
//! file stressing the 500 KiB path.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use botscope_robotstxt::parser::parse;
use botscope_robotstxt::{CompiledPolicy, RobotsTxt};
use botscope_simnet::phases::PolicyVersion;

fn paper_files(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse_paper_files");
    for v in PolicyVersion::ALL {
        let text = v.robots_txt().to_string();
        g.throughput(Throughput::Bytes(text.len() as u64));
        g.bench_function(v.label(), |b| b.iter(|| parse(black_box(&text))));
    }
    g.finish();
}

fn large_file(c: &mut Criterion) {
    // ~400 KiB of rules, near the RFC cap.
    let mut text = String::from("User-agent: *\n");
    let mut i = 0;
    while text.len() < 400 * 1024 {
        text.push_str(&format!("Disallow: /private/section-{i}/subsection/*\n"));
        i += 1;
    }
    let mut g = c.benchmark_group("parse_large_file");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("400KiB", |b| b.iter(|| parse(black_box(&text))));
    g.finish();
}

fn matching(c: &mut Criterion) {
    let doc = PolicyVersion::V2EndpointOnly.robots_txt();
    let paths = [
        "/page-data/item-001/page-data.json",
        "/news/item-042",
        "/people/person-0100",
        "/robots.txt",
    ];
    let agents = ["GPTBot", "Googlebot", "ClaudeBot", "unknown-bot"];
    c.bench_function("is_allowed_v2", |b| {
        b.iter(|| {
            let mut allowed = 0u32;
            for agent in &agents {
                for path in &paths {
                    if doc.is_allowed(black_box(agent), black_box(path)).allow {
                        allowed += 1;
                    }
                }
            }
            allowed
        });
    });

    // The same 16 checks through the compiled automaton — the
    // interpreted-vs-compiled ablation pair.
    let compiled = CompiledPolicy::compile(&doc);
    c.bench_function("is_allowed_v2_compiled", |b| {
        b.iter(|| {
            let mut allowed = 0u32;
            for agent in &agents {
                for path in &paths {
                    if compiled.check(black_box(agent), black_box(path)).allow {
                        allowed += 1;
                    }
                }
            }
            allowed
        });
    });

    // Wildcard-heavy matching.
    let wild = RobotsTxt::parse(
        "User-agent: *\nDisallow: /*/*/deep/*.json$\nDisallow: /a*b*c*d\nAllow: /a*b/ok\n",
    );
    c.bench_function("is_allowed_wildcards", |b| {
        b.iter(|| wild.is_allowed(black_box("bot"), black_box("/x/y/deep/file.json")).allow);
    });
    let wild_compiled = CompiledPolicy::compile(&wild);
    c.bench_function("is_allowed_wildcards_compiled", |b| {
        b.iter(|| wild_compiled.check(black_box("bot"), black_box("/x/y/deep/file.json")).allow);
    });

    // One-time compile cost, for the amortization story: how many
    // checks a compile must serve before the automaton pays for itself.
    c.bench_function("compile_v2", |b| b.iter(|| CompiledPolicy::compile(black_box(&doc))));
}

criterion_group!(benches, paper_files, large_file, matching);
criterion_main!(benches);

//! Criterion benches for the traffic generator: records/second at
//! increasing scale, and the end-to-end experiment analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use botscope_core::Experiment;
use botscope_simnet::scenario::{full_study, phase_study};
use botscope_simnet::SimConfig;

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(10);
    for &scale in &[0.02f64, 0.05, 0.1] {
        let cfg = SimConfig { days: 10, scale, ..SimConfig::default() };
        let n = full_study(&cfg).records.len() as u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("full_study_10d", scale), &cfg, |b, cfg| {
            b.iter(|| full_study(cfg));
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let cfg = SimConfig { scale: 0.05, sites: 8, ..SimConfig::default() };
    g.bench_function("phase_study_generate", |b| b.iter(|| phase_study(&cfg)));
    g.bench_function("phase_study_generate_and_analyze", |b| b.iter(|| Experiment::run(&cfg)));
    g.finish();
}

criterion_group!(benches, bench_generator, bench_end_to_end);
criterion_main!(benches);

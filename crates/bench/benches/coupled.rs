//! Criterion benches for the coupled pipeline: belief collection →
//! belief-driven generation, plus the attribution scoring stage alone.
//!
//! The headline line is `coupled/run_8w_12sites/0.25`: the full 8-week
//! coupled study (belief daemon over the whole fleet, then generation
//! consulting the atlas) at the scale the phase-study binaries use.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use botscope_core::attribution::attribute_table;
use botscope_monitor::{run_coupled_with_threads, CoupledConfig, RefreshModel, ScenarioKind};
use botscope_simnet::server::PolicyCorpus;
use botscope_simnet::SimConfig;

fn config(scale: f64) -> CoupledConfig {
    CoupledConfig {
        sim: SimConfig { scale, sites: 12, ..SimConfig::default() },
        scenario: ScenarioKind::Mixed,
        refresh: RefreshModel::Fleet,
    }
}

fn bench_coupled(c: &mut Criterion) {
    let mut g = c.benchmark_group("coupled");
    g.sample_size(10);
    for &scale in &[0.05, 0.25] {
        let cfg = config(scale);
        // Throughput denominator: generated rows of one run.
        let rows = run_coupled_with_threads(&cfg, 1).sim.table.len() as u64;
        g.throughput(Throughput::Elements(rows));
        g.bench_with_input(BenchmarkId::new("run_8w_12sites", scale), &cfg, |b, cfg| {
            b.iter(|| run_coupled_with_threads(cfg, 1));
        });
    }
    g.finish();
}

fn bench_attribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("attribution");
    g.sample_size(10);
    let cfg = config(0.25);
    let out = run_coupled_with_threads(&cfg, 1);
    let corpus = PolicyCorpus::new();
    g.throughput(Throughput::Elements(out.sim.table.len() as u64));
    g.bench_function("attribute_8w_12sites_0.25", |b| {
        b.iter(|| {
            black_box(attribute_table(&out.sim.table, &out.beliefs, &out.served, &corpus)).len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_coupled, bench_attribution);
criterion_main!(benches);

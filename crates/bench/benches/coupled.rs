//! Criterion benches for the coupled pipeline: belief collection →
//! belief-driven generation, plus the attribution scoring stage alone.
//!
//! The headline line is `coupled/scale_1.0_attributed`: the full
//! 8-week, scale-1.0, 36-site coupled study — belief daemon over the
//! whole fleet, generation consulting the atlas, then per-bot
//! violation attribution — on a single core. The ROADMAP acceptance
//! bound for that line (< 1 s steady-state) is enforced by the
//! `coupledbench` bin, not here.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use botscope_core::attribution::attribute_table_with_threads;
use botscope_monitor::{run_coupled_with_threads, CoupledConfig, RefreshModel, ScenarioKind};
use botscope_simnet::server::PolicyCorpus;
use botscope_simnet::SimConfig;

fn config(scale: f64) -> CoupledConfig {
    CoupledConfig {
        sim: SimConfig { scale, sites: 12, ..SimConfig::default() },
        scenario: ScenarioKind::Mixed,
        refresh: RefreshModel::Fleet,
    }
}

/// The paper-scale run: every estate site, full traffic volume.
fn paper_config() -> CoupledConfig {
    CoupledConfig {
        sim: SimConfig { scale: 1.0, sites: 36, ..SimConfig::default() },
        scenario: ScenarioKind::Mixed,
        refresh: RefreshModel::Fleet,
    }
}

fn bench_coupled(c: &mut Criterion) {
    let mut g = c.benchmark_group("coupled");
    g.sample_size(10);
    for &scale in &[0.05, 0.25] {
        let cfg = config(scale);
        // Throughput denominator: generated rows of one run.
        let rows = run_coupled_with_threads(&cfg, 1).sim.table.len() as u64;
        g.throughput(Throughput::Elements(rows));
        g.bench_with_input(BenchmarkId::new("run_8w_12sites", scale), &cfg, |b, cfg| {
            b.iter(|| run_coupled_with_threads(cfg, 1));
        });
    }
    g.finish();
}

/// The full study with attribution at paper scale, single-core — the
/// line the ROADMAP bound is stated against.
fn bench_paper_scale(c: &mut Criterion) {
    let mut g = c.benchmark_group("coupled");
    g.sample_size(10);
    let cfg = paper_config();
    let corpus = PolicyCorpus::new();
    let rows = run_coupled_with_threads(&cfg, 1).sim.table.len() as u64;
    g.throughput(Throughput::Elements(rows));
    g.bench_function("scale_1.0_attributed", |b| {
        b.iter(|| {
            let out = run_coupled_with_threads(&cfg, 1);
            black_box(attribute_table_with_threads(
                &out.sim.table,
                &out.beliefs,
                &out.served,
                &corpus,
                1,
            ))
            .len()
        });
    });
    g.finish();
}

fn bench_attribution(c: &mut Criterion) {
    let mut g = c.benchmark_group("attribution");
    g.sample_size(10);
    let corpus = PolicyCorpus::new();
    let cfg = config(0.25);
    let out = run_coupled_with_threads(&cfg, 1);
    g.throughput(Throughput::Elements(out.sim.table.len() as u64));
    g.bench_function("attribute_8w_12sites_0.25", |b| {
        b.iter(|| {
            black_box(attribute_table_with_threads(
                &out.sim.table,
                &out.beliefs,
                &out.served,
                &corpus,
                1,
            ))
            .len()
        });
    });
    // The attribution stage alone at paper scale (single core): shows
    // the cursor hoist's effect without the generation stages.
    let cfg = paper_config();
    let out = run_coupled_with_threads(&cfg, 1);
    g.throughput(Throughput::Elements(out.sim.table.len() as u64));
    g.bench_function("attribute_8w_36sites_1.0", |b| {
        b.iter(|| {
            black_box(attribute_table_with_threads(
                &out.sim.table,
                &out.beliefs,
                &out.served,
                &corpus,
                1,
            ))
            .len()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_coupled, bench_paper_scale, bench_attribution);
criterion_main!(benches);

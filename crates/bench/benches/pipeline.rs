//! Criterion benches for the analysis pipeline stages: standardization,
//! sessionization, the three compliance metrics, spoof detection, and
//! the end-to-end `Experiment::analyze_table` engine (generation
//! excluded), whose throughput line lands in `BENCH_pipeline.json` so
//! analysis speedups are tracked like generation ones.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use botscope_core::metrics::{crawl_delay_counts, disallow_counts, endpoint_counts};
use botscope_core::pipeline::standardize;
use botscope_core::spoofdetect::detect;
use botscope_core::Experiment;
use botscope_simnet::scenario::{full_study, phase_study_table};
use botscope_simnet::SimConfig;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::sessionize;

fn dataset() -> Vec<AccessRecord> {
    let cfg = SimConfig { days: 10, scale: 0.05, ..SimConfig::default() };
    full_study(&cfg).records
}

fn bench_pipeline(c: &mut Criterion) {
    let records = dataset();
    let n = records.len() as u64;

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(n));

    g.bench_function("standardize", |b| b.iter(|| standardize(black_box(&records))));

    g.bench_function("sessionize_5min", |b| b.iter(|| sessionize(black_box(&records), 300)));

    let logs = standardize(&records);
    let per_bot = logs.per_bot_records();
    g.bench_function("spoof_detect", |b| b.iter(|| detect(black_box(&per_bot))));

    // Metric throughput over the busiest bot.
    let busiest = per_bot.values().max_by_key(|v| v.len()).cloned().expect("non-empty dataset");
    g.throughput(Throughput::Elements(busiest.len() as u64));
    g.bench_function("crawl_delay_metric", |b| {
        b.iter_batched(
            || busiest.clone(),
            |records| crawl_delay_counts(&records, 30),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("endpoint_metric", |b| b.iter(|| endpoint_counts(black_box(&busiest))));
    g.bench_function("disallow_metric", |b| b.iter(|| disallow_counts(black_box(&busiest))));
    g.finish();
}

/// The full §4 analysis engine over a pre-generated phase study — the
/// same workload as `end_to_end/phase_study_generate_and_analyze` minus
/// generation, at 1 and 8 workers.
fn bench_analysis(c: &mut Criterion) {
    let cfg = SimConfig { scale: 0.05, sites: 8, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.throughput(Throughput::Elements(out.sim.table.len() as u64));
    for threads in [1usize, 8] {
        g.bench_function(format!("experiment_analyze_table/workers={threads}"), |b| {
            b.iter(|| {
                Experiment::analyze_table_with_threads(
                    black_box(&out.sim.table),
                    &out.schedule,
                    threads,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_analysis);
criterion_main!(benches);

//! Criterion benches for the analysis pipeline stages: standardization,
//! sessionization, the three compliance metrics, and spoof detection.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use botscope_core::metrics::{crawl_delay_counts, disallow_counts, endpoint_counts};
use botscope_core::pipeline::standardize;
use botscope_core::spoofdetect::detect;
use botscope_simnet::scenario::full_study;
use botscope_simnet::SimConfig;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::sessionize;

fn dataset() -> Vec<AccessRecord> {
    let cfg = SimConfig { days: 10, scale: 0.05, ..SimConfig::default() };
    full_study(&cfg).records
}

fn bench_pipeline(c: &mut Criterion) {
    let records = dataset();
    let n = records.len() as u64;

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(n));

    g.bench_function("standardize", |b| b.iter(|| standardize(black_box(&records))));

    g.bench_function("sessionize_5min", |b| b.iter(|| sessionize(black_box(&records), 300)));

    let logs = standardize(&records);
    let per_bot = logs.per_bot_records();
    g.bench_function("spoof_detect", |b| b.iter(|| detect(black_box(&per_bot))));

    // Metric throughput over the busiest bot.
    let busiest = per_bot.values().max_by_key(|v| v.len()).cloned().expect("non-empty dataset");
    g.throughput(Throughput::Elements(busiest.len() as u64));
    g.bench_function("crawl_delay_metric", |b| {
        b.iter_batched(
            || busiest.clone(),
            |records| crawl_delay_counts(&records, 30),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("endpoint_metric", |b| b.iter(|| endpoint_counts(black_box(&busiest))));
    g.bench_function("disallow_metric", |b| b.iter(|| disallow_counts(black_box(&busiest))));
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

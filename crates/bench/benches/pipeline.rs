//! Criterion benches for the analysis pipeline stages: standardization,
//! sessionization, the three compliance metrics, spoof detection, and
//! the end-to-end `Experiment::analyze_table` engine (generation
//! excluded), whose throughput line lands in `BENCH_pipeline.json` so
//! analysis speedups are tracked like generation ones.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use botscope_core::metrics::{crawl_delay_counts, disallow_counts, endpoint_counts};
use botscope_core::pipeline::standardize;
use botscope_core::spoofdetect::detect;
use botscope_core::Experiment;
use botscope_simnet::scenario::{full_study, phase_study_table};
use botscope_simnet::SimConfig;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::sessionize;

fn dataset() -> Vec<AccessRecord> {
    let cfg = SimConfig { days: 10, scale: 0.05, ..SimConfig::default() };
    full_study(&cfg).records
}

fn bench_pipeline(c: &mut Criterion) {
    let records = dataset();
    let n = records.len() as u64;

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(n));

    g.bench_function("standardize", |b| b.iter(|| standardize(black_box(&records))));

    g.bench_function("sessionize_5min", |b| b.iter(|| sessionize(black_box(&records), 300)));

    let logs = standardize(&records);
    let per_bot = logs.per_bot_records();
    g.bench_function("spoof_detect", |b| b.iter(|| detect(black_box(&per_bot))));

    // Metric throughput over the busiest bot.
    let busiest = per_bot.values().max_by_key(|v| v.len()).cloned().expect("non-empty dataset");
    g.throughput(Throughput::Elements(busiest.len() as u64));
    g.bench_function("crawl_delay_metric", |b| {
        b.iter_batched(
            || busiest.clone(),
            |records| crawl_delay_counts(&records, 30),
            BatchSize::SmallInput,
        );
    });
    g.bench_function("endpoint_metric", |b| b.iter(|| endpoint_counts(black_box(&busiest))));
    g.bench_function("disallow_metric", |b| b.iter(|| disallow_counts(black_box(&busiest))));
    g.finish();
}

/// The full §4 analysis engine over a pre-generated phase study — the
/// same workload as `end_to_end/phase_study_generate_and_analyze` minus
/// generation. The worker sweep stops at the machine's available
/// parallelism: oversubscribing a small container only measures
/// scheduler thrash, not the engine.
fn bench_analysis(c: &mut Criterion) {
    let cfg = SimConfig { scale: 0.05, sites: 8, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let mut g = c.benchmark_group("analysis");
    g.sample_size(10);
    g.throughput(Throughput::Elements(out.sim.table.len() as u64));
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut counts = vec![1usize];
    if hardware > 1 {
        counts.push(hardware.min(8));
    }
    for threads in counts {
        g.bench_function(format!("experiment_analyze_table/workers={threads}"), |b| {
            b.iter(|| {
                Experiment::analyze_table_with_threads(
                    black_box(&out.sim.table),
                    &out.schedule,
                    threads,
                )
            });
        });
    }
    g.finish();
}

/// The bounded-memory path: streamed generation through the disk-spill
/// k-way merge, binary encode/decode, and the single-pass streaming
/// analyzer — each against the same workload the materialized benches
/// use, so the overhead of never holding the table is visible.
fn bench_streaming(c: &mut Criterion) {
    use botscope_simnet::engine::{simulate_stream_with_threads, StreamOptions};
    use botscope_weblog::colfmt::{BinReader, BinSink};
    use botscope_weblog::sink::RowSink;
    use botscope_weblog::stream::TableRowStream;

    let cfg = SimConfig { scale: 0.05, sites: 8, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let rows = out.sim.table.len() as u64;

    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);
    g.throughput(Throughput::Elements(rows));

    // Generation → spill → merge → discarded binary bytes.
    let (lo, hi) = out.schedule.bounds();
    let gen_cfg = SimConfig { start: lo, days: hi.days_since(lo), ..cfg.clone() };
    g.bench_function("simulate_stream_bin", |b| {
        b.iter(|| {
            let mut sink = BinSink::new(std::io::sink()).expect("bin sink");
            simulate_stream_with_threads(
                black_box(&gen_cfg),
                &out.schedule,
                1,
                &StreamOptions::default(),
                &mut [&mut sink as &mut dyn RowSink],
            )
            .expect("streaming simulate")
        });
    });

    // Binary encode and decode of the materialized table.
    let mut bin = Vec::new();
    botscope_weblog::colfmt::write_table(&mut bin, &out.sim.table).expect("encode");
    g.bench_function("binary_encode", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(bin.len());
            botscope_weblog::colfmt::write_table(&mut buf, black_box(&out.sim.table))
                .expect("encode");
            buf
        });
    });
    g.bench_function("binary_decode_stream", |b| {
        b.iter(|| {
            let mut reader = BinReader::new(black_box(&bin[..])).expect("header");
            let mut n = 0u64;
            while let Some(row) = reader.next_row() {
                row.expect("clean row");
                n += 1;
            }
            n
        });
    });

    // Single-pass analysis over the sorted in-memory stream.
    g.bench_function("experiment_analyze_stream", |b| {
        b.iter(|| {
            let mut stream = TableRowStream::new(black_box(&out.sim.table));
            Experiment::analyze_stream(&mut stream, &out.schedule).expect("clean stream")
        });
    });
    g.finish();
}

/// The k-way merge behind every streamed path, serial vs the
/// tournament-partitioned parallel variant (byte-identical output):
/// the phase-study table split into 8 canonically sorted runs, merged
/// into a counting sink.
fn bench_merge(c: &mut Criterion) {
    use botscope_weblog::sink::{CountingSink, RowSink};
    use botscope_weblog::table::LogTable;
    use botscope_weblog::{merge_runs, merge_runs_parallel, MergeRun};

    let cfg = SimConfig { scale: 0.05, sites: 8, ..SimConfig::default() };
    let table = phase_study_table(&cfg).sim.table;
    let rows = table.len() as u64;

    // Strided sub-tables of a canonically sorted table stay sorted, so
    // they are valid merge runs with maximally interleaved keys — the
    // merge's worst case.
    const RUNS: usize = 8;
    let mut subs: Vec<LogTable> = (0..RUNS).map(|_| LogTable::new()).collect();
    for (i, record) in table.iter_records().enumerate() {
        subs[i % RUNS].push_record(&record);
    }

    let mut g = c.benchmark_group("merge");
    g.sample_size(10);
    g.throughput(Throughput::Elements(rows));
    let make_runs = || subs.iter().cloned().map(MergeRun::from_table).collect::<Vec<_>>();
    g.bench_function("merge_runs_serial/8_runs", |b| {
        b.iter_batched(
            make_runs,
            |runs| {
                let mut counter = CountingSink::default();
                merge_runs(runs, &mut [&mut counter as &mut dyn RowSink]).expect("merge")
            },
            BatchSize::SmallInput,
        );
    });
    let hardware = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    for workers in [2usize, hardware.min(8)] {
        g.bench_function(format!("merge_runs_parallel/8_runs/workers={workers}"), |b| {
            b.iter_batched(
                make_runs,
                |runs| {
                    let mut counter = CountingSink::default();
                    merge_runs_parallel(runs, &mut [&mut counter as &mut dyn RowSink], workers)
                        .expect("merge")
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_analysis, bench_streaming, bench_merge);
criterion_main!(benches);

//! Criterion benches for the monitoring daemon: fetch-event throughput
//! at increasing estate sizes, plus the virtual transport's per-request
//! cost.
//!
//! The headline line is `monitor/daemon_46d/100000`: the acceptance bar
//! is a 100k-site estate monitored over a 46-simulated-day horizon in
//! under 10 s single-core (~4.5 M fetch events).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use botscope_monitor::daemon::{run_with_threads, MonitorConfig};
use botscope_monitor::scenario::build_estate;
use botscope_monitor::transport::VirtualTransport;

fn config(sites: usize) -> MonitorConfig {
    MonitorConfig { sites, days: 46, bots: 2, ..MonitorConfig::default() }
}

fn bench_daemon(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor");
    g.sample_size(10);
    for &sites in &[1_000usize, 10_000, 100_000] {
        let cfg = config(sites);
        // Throughput denominator: fetch events of one run.
        let events = run_with_threads(&cfg, 1).stats.fetches;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(BenchmarkId::new("daemon_46d", sites), &cfg, |b, cfg| {
            b.iter(|| run_with_threads(cfg, 1));
        });
    }
    g.finish();
}

fn bench_transport(c: &mut Criterion) {
    let mut g = c.benchmark_group("transport");
    g.sample_size(10);
    let cfg = config(512);
    let transport = VirtualTransport::new(build_estate(&cfg));
    let start = cfg.start.unix();
    // One pass over the estate at a spread of request instants: the
    // per-fetch cost including window lookup, seeded latency hashing,
    // and redirect-chain resolution where scripted.
    g.throughput(Throughput::Elements(512 * 8));
    g.bench_function("fetch_512_sites_8_instants", |b| {
        b.iter(|| {
            let mut bytes = 0u64;
            for instant in 0..8u64 {
                let now = start + instant * 86_400 * 5;
                for site in 0..transport.len() {
                    bytes += black_box(transport.fetch(site, now, site as u64)).bytes;
                }
            }
            bytes
        });
    });
    g.finish();
}

criterion_group!(benches, bench_daemon, bench_transport);
criterion_main!(benches);

//! Criterion benches for the static analyzer (`BENCH_audit.json`):
//! per-policy analysis cost over the paper's corpus, the semantic-diff
//! transition matrix, an estate-scale liveness sweep, and the
//! admission payoff — recompiles avoided when cosmetic digests are
//! skipped instead of invalidating warm automata.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use botscope_monitor::daemon::ChangeDigest;
use botscope_monitor::{apply_digests, prime_estate};
use botscope_robotstxt::analysis::{
    analyze, classify_change, divergence_hazards, rule_liveness, semantic_diff, ChangeClass,
};
use botscope_robotstxt::{CompiledPolicy, PolicyEstate};
use botscope_simnet::phases::PolicyVersion;

fn bench_analyzer(c: &mut Criterion) {
    let docs: Vec<_> = PolicyVersion::ALL.iter().map(|v| v.robots_txt()).collect();
    let compiled: Vec<_> = docs.iter().map(CompiledPolicy::compile).collect();

    let mut g = c.benchmark_group("audit");

    // Full analysis (liveness + lints + divergence hazards) per corpus
    // policy, parse-to-findings.
    g.throughput(Throughput::Elements(docs.len() as u64));
    g.bench_function("analyze_corpus", |b| {
        b.iter(|| {
            let mut findings = 0usize;
            for doc in &docs {
                findings += analyze(black_box(doc)).findings.len();
            }
            findings
        });
    });

    // The two automaton passes in isolation, over pre-compiled policies.
    g.throughput(Throughput::Elements(compiled.len() as u64));
    g.bench_function("rule_liveness_corpus", |b| {
        b.iter(|| {
            let mut alive = 0usize;
            for policy in &compiled {
                alive += rule_liveness(black_box(policy)).0.len();
            }
            alive
        });
    });
    g.bench_function("divergence_hazards_corpus", |b| {
        b.iter(|| {
            let mut hazards = 0usize;
            for policy in &compiled {
                hazards += divergence_hazards(black_box(policy)).0.len();
            }
            hazards
        });
    });

    // Semantic diff over all 12 ordered version transitions — the
    // product-automaton walk that prices digest classification.
    g.throughput(Throughput::Elements(12));
    g.bench_function("semantic_diff_matrix", |b| {
        b.iter(|| {
            let mut behavioral = 0usize;
            for left in &compiled {
                for right in &compiled {
                    if std::ptr::eq(left, right) {
                        continue;
                    }
                    let diff = semantic_diff(black_box(left), black_box(right));
                    behavioral += usize::from(!diff.delay_changes.is_empty());
                }
            }
            behavioral
        });
    });
    g.finish();
}

/// Estate-scale sweep: liveness proofs over a 64-site deployment, the
/// unit `botscope audit --estate` runs per monitoring pass.
fn bench_estate_sweep(c: &mut Criterion) {
    let sites = 64usize;
    let compiled: Vec<_> = (0..sites)
        .map(|i| CompiledPolicy::compile(&PolicyVersion::ALL[i % 4].robots_txt()))
        .collect();

    let mut g = c.benchmark_group("audit");
    g.throughput(Throughput::Elements(sites as u64));
    g.bench_function("liveness_sweep_64_sites", |b| {
        b.iter(|| {
            let mut alive = 0usize;
            for policy in &compiled {
                alive += rule_liveness(black_box(policy)).0.len();
            }
            alive
        });
    });
    g.finish();
}

/// The payoff: one monitoring pass's digests folded into a warm
/// estate, with and without cosmetic classification. The cosmetic
/// variant re-checks every site afterwards at zero recompiles.
fn bench_recompiles_avoided(c: &mut Criterion) {
    let sites: Vec<String> = (0..36).map(|i| format!("site-{i:02}.example.edu")).collect();
    let base = PolicyVersion::Base.robots_txt();
    // A pass where half the digests are semantically cosmetic (the
    // served bytes changed; the decisions did not).
    let digest = |site: &str, class: ChangeClass| ChangeDigest {
        site: site.to_string(),
        at: 12,
        from: PolicyVersion::Base,
        to: PolicyVersion::Base,
        observers: 1,
        tightened: 0,
        loosened: 0,
        delay_changes: 0,
        class,
    };
    let digests: Vec<ChangeDigest> = sites
        .iter()
        .enumerate()
        .map(|(i, s)| {
            digest(s, if i % 2 == 0 { ChangeClass::Cosmetic } else { ChangeClass::Behavioral })
        })
        .collect();
    assert_eq!(classify_change(&base, &base), ChangeClass::Cosmetic);

    let warm_estate = || {
        let mut estate = PolicyEstate::new();
        prime_estate(&mut estate, sites.iter().map(|s| (s.as_str(), PolicyVersion::Base)));
        for site in &sites {
            estate.check(site, "GPTBot", "/news/item-001");
        }
        estate
    };

    let mut g = c.benchmark_group("audit");
    g.throughput(Throughput::Elements(sites.len() as u64));
    g.bench_function("apply_digests_rewarm_36_sites", |b| {
        b.iter_batched(
            warm_estate,
            |mut estate| {
                let outcome = apply_digests(&mut estate, black_box(&digests));
                // Re-warm: only behaviorally-invalidated sites recompile.
                let mut allowed = 0u64;
                for site in &sites {
                    allowed += u64::from(estate.check(site, "GPTBot", "/news/item-001").unwrap());
                }
                assert_eq!(outcome.cosmetic_skips, sites.len() / 2);
                assert_eq!(estate.compiles(), (sites.len() + outcome.dropped) as u64);
                (allowed, estate)
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_analyzer, bench_estate_sweep, bench_recompiles_avoided);
criterion_main!(benches);

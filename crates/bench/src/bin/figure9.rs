//! Regenerates paper Figure 9: per-bot compliance shifts with significance.
fn main() {
    print!("{}", botscope_core::report::figure9(&botscope_bench::experiment(), false));
}

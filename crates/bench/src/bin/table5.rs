//! Regenerates paper Table 5: weighted category compliance per directive.
fn main() {
    print!("{}", botscope_core::report::table5(&botscope_bench::experiment()));
}

//! Regenerates paper Table 9: legitimate vs potentially spoofed volume.
fn main() {
    print!("{}", botscope_core::report::table9(&botscope_bench::experiment()));
}

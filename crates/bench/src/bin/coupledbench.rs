//! Paper-scale perf gate for the coupled pipeline.
//!
//! Runs the full 8-week coupled study (belief daemon → belief-driven
//! generation) plus per-bot violation attribution, single-core by
//! default, and reports steady-state wall time (one untimed warmup
//! run, then the mean over `reps` timed runs).
//!
//! ```text
//! coupledbench [scale=1.0] [sites=36] [reps=3] [threads=1]
//! ```
//!
//! The ROADMAP acceptance bound — scale 1.0, 36 sites, with
//! attribution, in under 1 s of single-core steady-state compute — is
//! enforced whenever the run is at (or above) that shape: the process
//! exits non-zero if the bound is missed, so CI can gate on it.
//!
//! With `BOTSCOPE_BENCH_JSON=<path>` set, results are also written as
//! schema-v2 `BENCH_*.json` lines (`coupled/scale_<s>_attributed` and
//! `attribution/attribute_8w_<n>sites_<s>`), the same format the
//! vendored criterion harness emits.

use std::time::Instant;

use botscope_core::attribution::attribute_table_with_threads;
use botscope_monitor::{run_coupled_with_threads, CoupledConfig, RefreshModel, ScenarioKind};
use botscope_obs::bench::{render_bench_json, BenchLine};
use botscope_simnet::server::PolicyCorpus;
use botscope_simnet::SimConfig;

/// The ROADMAP bound: paper scale with attribution, single core, < 1 s.
const BOUND_NS: f64 = 1_000_000_000.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(36);
    let reps: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let threads: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1).max(1);

    let cfg = CoupledConfig {
        sim: SimConfig { scale, sites, ..SimConfig::default() },
        scenario: ScenarioKind::Mixed,
        refresh: RefreshModel::Fleet,
    };
    let corpus = PolicyCorpus::new();
    eprintln!("coupled study: scale={scale} sites={sites} reps={reps} threads={threads}");

    // Warmup: first run pays allocator growth and page faults; the
    // bound is stated against steady state.
    let warm = run_coupled_with_threads(&cfg, threads);
    let rows = warm.sim.table.len();
    drop(warm);

    let mut total_ns = 0f64;
    let mut attr_ns = 0f64;
    for rep in 0..reps {
        let t0 = Instant::now();
        let out = run_coupled_with_threads(&cfg, threads);
        let t1 = Instant::now();
        let counts = attribute_table_with_threads(
            &out.sim.table,
            &out.beliefs,
            &out.served,
            &corpus,
            threads,
        );
        let dt_attr = t1.elapsed();
        let dt = t0.elapsed();
        total_ns += dt.as_nanos() as f64;
        attr_ns += dt_attr.as_nanos() as f64;
        println!(
            "rep={rep} rows={} bots_scored={} wall_s={:.3} (attribution_s={:.3}, {:.0} krows/s)",
            out.sim.table.len(),
            counts.len(),
            dt.as_secs_f64(),
            dt_attr.as_secs_f64(),
            out.sim.table.len() as f64 / dt.as_secs_f64() / 1e3,
        );
    }
    let mean_ns = total_ns / reps as f64;
    let mean_attr_ns = attr_ns / reps as f64;
    println!(
        "mean: {:.3} s coupled+attribution ({:.3} s attribution alone) over {reps} reps",
        mean_ns / 1e9,
        mean_attr_ns / 1e9
    );

    if let Ok(path) = std::env::var("BOTSCOPE_BENCH_JSON") {
        let lines = vec![
            BenchLine {
                label: format!("coupled/scale_{scale:?}_attributed"),
                mean_ns,
                iters: u64::from(reps),
                throughput_per_iter: rows as f64,
            },
            BenchLine {
                label: format!("attribution/attribute_8w_{sites}sites_{scale:?}"),
                mean_ns: mean_attr_ns,
                iters: u64::from(reps),
                throughput_per_iter: rows as f64,
            },
        ];
        let doc = render_bench_json(&lines);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("warning: cannot write bench baseline {path}: {e}");
        }
    }

    // The acceptance bound applies to the paper-scale single-core shape.
    if scale >= 1.0 && sites >= 36 && threads == 1 {
        if mean_ns > BOUND_NS {
            eprintln!(
                "FAIL: paper-scale coupled study with attribution took {:.3} s (bound 1 s)",
                mean_ns / 1e9
            );
            std::process::exit(1);
        }
        println!("PASS: {:.3} s < 1 s paper-scale bound", mean_ns / 1e9);
    }
}

//! Wall-clock and memory harness for the traffic generator.
//!
//! Times `scenario::full_study` at a given horizon/scale and reports
//! record count, throughput, peak RSS, and the estimated heap footprint
//! of the generated dataset. Used to record the before/after numbers of
//! data-model and parallelism changes in ROADMAP.md.
//!
//! ```text
//! genbench [days=46] [scale=1.0] [reps=1]
//! ```

use std::time::Instant;

use botscope_simnet::scenario::{full_study, full_study_table};
use botscope_simnet::{worker_threads, SimConfig};
use botscope_weblog::table::records_heap_bytes;

/// Peak resident set size of this process in kilobytes (Linux VmHWM).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches(" kB").trim().parse().ok();
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let days: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(46);
    let scale: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let reps: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let cfg = SimConfig { days, scale, ..SimConfig::default() };
    eprintln!(
        "generating: days={days} scale={scale} sites={} reps={reps} workers={}",
        cfg.sites,
        worker_threads()
    );

    for rep in 0..reps {
        // Table-native path (the scalable representation).
        let t0 = Instant::now();
        let out = full_study_table(&cfg);
        let table_dt = t0.elapsed();
        let n = out.table.len();
        let table_heap = out.table.heap_bytes();
        drop(out);

        // Compatibility path: generate + materialize Vec<AccessRecord>.
        let t0 = Instant::now();
        let out = full_study(&cfg);
        let records_dt = t0.elapsed();
        let records_heap = records_heap_bytes(&out.records);
        drop(out);

        println!(
            "rep={rep} records={n} \
             table: wall_s={:.3} krec_per_s={:.0} heap_mb={:.1} | \
             materialized: wall_s={:.3} krec_per_s={:.0} heap_mb={:.1} | peak_rss_mb={:.1}",
            table_dt.as_secs_f64(),
            n as f64 / table_dt.as_secs_f64() / 1e3,
            table_heap as f64 / 1e6,
            records_dt.as_secs_f64(),
            n as f64 / records_dt.as_secs_f64() / 1e3,
            records_heap as f64 / 1e6,
            peak_rss_kb().unwrap_or(0) as f64 / 1e3,
        );
    }
}

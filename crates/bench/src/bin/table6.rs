//! Regenerates paper Table 6: per-bot compliance and metadata.
fn main() {
    print!("{}", botscope_core::report::table6(&botscope_bench::experiment()));
}

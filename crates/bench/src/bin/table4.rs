//! Regenerates paper Table 4: traffic per robots.txt version.
fn main() {
    print!("{}", botscope_core::report::table4(&botscope_bench::experiment()));
}

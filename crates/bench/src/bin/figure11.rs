//! Regenerates paper Figure 11: compliance shifts for spoofed bots.
fn main() {
    print!("{}", botscope_core::report::figure9(&botscope_bench::experiment(), true));
}

//! Regenerates paper Table 8: dominant vs suspicious ASNs per bot.
fn main() {
    print!("{}", botscope_bench::full_report().table8());
}

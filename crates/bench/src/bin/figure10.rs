//! Regenerates paper Figure 10: robots.txt re-check frequency by category.
fn main() {
    print!("{}", botscope_bench::full_report().figure10());
}

//! Regenerates paper Table 10: z-scores / p-values per bot per directive.
fn main() {
    print!("{}", botscope_core::report::table10(&botscope_bench::experiment()));
}

//! Extension analyses beyond the paper's published tables: adaptation
//! speed (the §4.1 stated goal the paper leaves unquantified),
//! promise-vs-practice, and honeypot corroboration of spoofing (§6
//! future work).

use botscope_core::pipeline::standardize;
use botscope_core::{adaptation, honeypot, promise, spoofdetect};
use botscope_simnet::scenario::phase_study;

fn main() {
    let cfg = botscope_bench::phase_config();
    let study = phase_study(&cfg);

    // Adaptation: how long until bots notice each new file?
    let logs = standardize(&study.sim.records);
    let lags = adaptation::awareness_lags(&logs, &study.schedule);
    println!("{}", adaptation::render(&adaptation::by_category(&lags)));

    // Promise vs practice.
    let exp = botscope_core::Experiment::analyze(&study.sim.records, &study.schedule);
    println!("{}", promise::render(&exp));

    // Honeypot trap analysis + spoof corroboration.
    let spoof = spoofdetect::detect(&logs.per_bot_records());
    println!("{}", honeypot::render(&logs, &spoof));
}

//! Regenerates paper Figure 4: sessions per day by category.
fn main() {
    print!("{}", botscope_bench::full_report().figure4());
}

//! Regenerates paper Figure 3: CDF of bytes downloaded over time.
fn main() {
    print!("{}", botscope_bench::full_report().figure3());
}

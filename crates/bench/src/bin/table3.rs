//! Regenerates paper Table 3: the 20 most active bots.
fn main() {
    print!("{}", botscope_bench::full_report().table3());
}

//! Regenerates paper Table 2: dataset overview (all data vs known bots).
fn main() {
    print!("{}", botscope_bench::full_report().table2());
}

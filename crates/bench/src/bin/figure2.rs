//! Regenerates paper Figure 2: sessions per bot category.
fn main() {
    print!("{}", botscope_bench::full_report().figure2());
}

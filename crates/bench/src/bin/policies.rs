//! Prints the four deployed robots.txt files (paper Figures 5-8).
fn main() {
    print!("{}", botscope_core::report::policies());
}

//! Runs the entire reproduction: every table and figure, in paper order.
//! This is the binary EXPERIMENTS.md is generated from.
use botscope_core::report;

fn main() {
    let full = botscope_bench::full_report();
    let exp = botscope_bench::experiment();
    println!("=== botscope reproduction: all tables and figures ===\n");
    println!("{}", full.table2());
    println!("{}", full.table3());
    println!("{}", full.figure2());
    println!("{}", full.figure3());
    println!("{}", full.figure4());
    println!("{}", report::policies());
    println!("{}", report::table4(&exp));
    println!("{}", report::table5(&exp));
    println!("{}", report::table6(&exp));
    println!("{}", report::figure9(&exp, false));
    println!("{}", report::table7(&exp));
    println!("{}", full.figure10());
    println!("{}", full.table8());
    println!("{}", report::table9(&exp));
    println!("{}", report::figure9(&exp, true));
    println!("{}", report::table10(&exp));
}

//! Regenerates paper Table 7: bots that skipped the robots.txt check.
fn main() {
    print!("{}", botscope_core::report::table7(&botscope_bench::experiment()));
}

//! Shared configuration for the reproduction binaries.
//!
//! Every table/figure binary uses the same two scenario configurations so
//! numbers are comparable across binaries and runs:
//!
//! * [`full_config`] — study 1 (paper §3/§5): 36 sites, 46 days, scale
//!   0.1 (≈ a tenth of the paper's raw volume; all shapes preserved),
//! * [`phase_config`] — study 2 (paper §4): the 8-week four-phase
//!   experiment, scale 0.25 so every Table 6 bot clears the ≥5-accesses
//!   filter in every phase.
//!
//! The seed defaults to 9309 and can be overridden with the
//! `BOTSCOPE_SEED` environment variable; scale with `BOTSCOPE_SCALE`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use botscope_core::report::FullStudyReport;
use botscope_core::Experiment;
use botscope_simnet::scenario::full_study;
use botscope_simnet::SimConfig;

/// Read an env-var override.
fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Configuration of the 46-day passive study.
pub fn full_config() -> SimConfig {
    SimConfig {
        seed: env_u64("BOTSCOPE_SEED", 9309),
        scale: env_f64("BOTSCOPE_SCALE", 0.1),
        ..SimConfig::default()
    }
}

/// Configuration of the 8-week phase study.
pub fn phase_config() -> SimConfig {
    SimConfig {
        seed: env_u64("BOTSCOPE_SEED", 9309),
        scale: env_f64("BOTSCOPE_SCALE", 0.25),
        ..SimConfig::default()
    }
}

/// Generate the passive study and compute its report.
pub fn full_report() -> FullStudyReport {
    let cfg = full_config();
    let out = full_study(&cfg);
    FullStudyReport::new(&out.records)
}

/// Generate and analyze the phase study.
pub fn experiment() -> Experiment {
    Experiment::run(&phase_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_valid() {
        full_config().assert_valid();
        phase_config().assert_valid();
    }
}

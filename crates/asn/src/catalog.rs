//! Ground-truth spoofing catalog (paper Table 8).
//!
//! The paper flags 18 bots whose traffic was ≥90 % from one ASN yet showed
//! residual requests from other networks — likely user-agent spoofing. This
//! module encodes that table verbatim. The traffic simulator *plants*
//! spoofed traffic according to these profiles; the analysis pipeline in
//! `botscope-core` must then rediscover them from the logs alone, closing
//! the generator→analyzer validation loop.

/// One row of Table 8: a bot, its dominant network, and the suspicious
/// minority networks observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpoofProfile {
    /// Canonical bot name (matches `botscope-useragent` registry names).
    pub bot: &'static str,
    /// The dominant ASN carrying ≥90 % of the bot's traffic.
    pub main_asn: &'static str,
    /// Minority ASNs (<5 % of traffic each) flagged as possible spoofing.
    pub suspicious_asns: &'static [&'static str],
}

/// Paper Table 8, row for row.
pub const SPOOF_CATALOG: &[SpoofProfile] = &[
    SpoofProfile { bot: "AdsBot-Google", main_asn: "GOOGLE", suspicious_asns: &["DMZHOST"] },
    SpoofProfile { bot: "AhrefsBot", main_asn: "OVH", suspicious_asns: &["AHREFS-AS-AP"] },
    SpoofProfile {
        bot: "Amazonbot",
        main_asn: "AMAZON-AES",
        suspicious_asns: &["CONTABO", "DIGITALOCEAN-ASN"],
    },
    SpoofProfile {
        bot: "Baiduspider",
        main_asn: "CHINA169-Backbone",
        suspicious_asns: &[
            "CHINAMOBILE-CN",
            "CHINANET-BACKBONE",
            "CHINANET-IDC-BJ-AP",
            "CHINATELECOM-JIANGSU-NANJING-IDC",
            "CHINATELECOM-ZHEJIANG-WENZHOU-IDC",
            "HINET",
        ],
    },
    SpoofProfile {
        bot: "bingbot",
        main_asn: "MICROSOFT-CORP-MSN-AS-BLOCK",
        suspicious_asns: &[
            "Clouvider",
            "HOL-GR",
            "MICROSOFT-CORP-AS",
            "ORG-TNL2-AFRINIC",
            "ORG-VNL1-AFRINIC",
        ],
    },
    SpoofProfile {
        bot: "ClaudeBot",
        main_asn: "AMAZON-02",
        suspicious_asns: &["GOOGLE-CLOUD-PLATFORM"],
    },
    SpoofProfile {
        bot: "DuckDuckBot",
        main_asn: "MICROSOFT-CORP-MSN-AS-BLOCK",
        suspicious_asns: &["DIGITALOCEAN-ASN31", "INTERQ31"],
    },
    SpoofProfile {
        bot: "facebookexternalhit",
        main_asn: "FACEBOOK",
        suspicious_asns: &["AMAZON-02", "AMAZON-AES", "KAKAO-AS-KR-KR51"],
    },
    SpoofProfile {
        bot: "GPTBot",
        main_asn: "MICROSOFT-CORP-MSN-AS-BLOCK",
        suspicious_asns: &["BORUSANTELEKOM-AS"],
    },
    SpoofProfile { bot: "Google Web Preview", main_asn: "GOOGLE", suspicious_asns: &["AMAZON-02"] },
    SpoofProfile { bot: "Googlebot-Image", main_asn: "GOOGLE", suspicious_asns: &["AMAZON-02"] },
    SpoofProfile {
        bot: "Googlebot",
        main_asn: "GOOGLE",
        suspicious_asns: &[
            "52468",
            "ASN-SATELLITE",
            "ASN270353",
            "CDNEXT",
            "CHINANET-BACKBONE",
            "Clouvider",
            "DATACLUB",
            "HOL-GR",
            "HWCLOUDS-AS-AP",
            "IT7NET",
            "LIMESTONENETWORKS",
            "M247",
            "ORG-RTL1-AFRINIC",
            "ORG-TNL2-AFRINIC",
            "P4NET",
            "PROSPERO-AS",
            "RELIABLESITE",
            "RELIANCEJIO-IN",
            "ROSTELECOM-AS",
            "ROUTERHOSTING",
            "TENCENT-NET-AP-CN",
            "Telefonica_de_Espana",
            "VCG-AS",
        ],
    },
    SpoofProfile {
        bot: "meta-externalagent",
        main_asn: "FACEBOOK",
        suspicious_asns: &["DIGITALOCEAN-ASN"],
    },
    SpoofProfile {
        bot: "SkypeUriPreview",
        main_asn: "MICROSOFT-CORP-MSN-AS-BLOCK",
        suspicious_asns: &["AMAZON-AES", "M247"],
    },
    SpoofProfile {
        bot: "Snap URL Preview Service",
        main_asn: "AMAZON-AES",
        suspicious_asns: &["AMAZON-02"],
    },
    SpoofProfile {
        bot: "Twitterbot",
        main_asn: "TWITTER",
        suspicious_asns: &["PROSPERO-AS", "TELEGRAM"],
    },
    SpoofProfile {
        bot: "yandex.com/bots",
        main_asn: "YANDEX",
        suspicious_asns: &["AMAZON-02", "AMAZON-AES", "PROSPERO-AS"],
    },
];

/// The catalog (convenience accessor).
pub fn spoof_catalog() -> &'static [SpoofProfile] {
    SPOOF_CATALOG
}

/// Find a profile by bot name.
pub fn profile_for(bot: &str) -> Option<&'static SpoofProfile> {
    SPOOF_CATALOG.iter().find(|p| p.bot.eq_ignore_ascii_case(bot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::lookup;

    #[test]
    fn paper_row_count() {
        // Table 8 lists 17 rows (the paper's text says "18 bots"; the
        // printed table has 17 — we encode the printed rows).
        assert_eq!(SPOOF_CATALOG.len(), 17);
    }

    #[test]
    fn every_asn_resolves_in_directory() {
        for p in SPOOF_CATALOG {
            assert!(lookup(p.main_asn).is_some(), "main {} missing", p.main_asn);
            for s in p.suspicious_asns {
                assert!(lookup(s).is_some(), "suspicious {s} missing for {}", p.bot);
            }
        }
    }

    #[test]
    fn googlebot_has_widest_spoofing() {
        let g = profile_for("Googlebot").unwrap();
        assert!(g.suspicious_asns.len() >= 20, "paper: up to 24 ASNs");
        let max = SPOOF_CATALOG.iter().map(|p| p.suspicious_asns.len()).max().unwrap();
        assert_eq!(max, g.suspicious_asns.len());
    }

    #[test]
    fn main_asn_never_in_suspicious_list() {
        for p in SPOOF_CATALOG {
            assert!(
                !p.suspicious_asns.contains(&p.main_asn),
                "{} lists its main ASN as suspicious",
                p.bot
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(profile_for("gptbot").unwrap().main_asn, "MICROSOFT-CORP-MSN-AS-BLOCK");
        assert!(profile_for("NoSuchBot").is_none());
    }
}

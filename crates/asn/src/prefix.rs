//! Deterministic IPv4 allocation per ASN.
//!
//! The traffic simulator needs to hand each simulated client an IP address
//! whose ASN is recoverable, because the analysis pipeline stratifies by
//! (ASN, IP hash, user agent) τ-tuples (paper §4.2). We allocate each
//! directory entry a disjoint synthetic /16 inside `10.0.0.0/8`:
//! `10.<directory-index>.<host-hi>.<host-lo>`. Reverse lookup is exact.

use crate::registry::{AsnRecord, DIRECTORY};

/// The IPv4 address (as a `u32`) of host `host_index` inside `asn_name`'s
/// allocation. Host indices wrap modulo the /16 host space.
///
/// Returns `None` for ASN names not in the directory.
///
/// ```
/// use botscope_asn::{asn_of_ip, ip_for};
/// let ip = ip_for("GOOGLE", 7).unwrap();
/// assert_eq!(asn_of_ip(ip).unwrap().name, "GOOGLE");
/// ```
pub fn ip_for(asn_name: &str, host_index: u32) -> Option<u32> {
    let idx = DIRECTORY.iter().position(|r| r.name == asn_name)?;
    let host = host_index % (1 << 16);
    Some((10u32 << 24) | ((idx as u32) << 16) | host)
}

/// Reverse lookup: which ASN owns this simulated address?
///
/// Returns `None` for addresses outside `10.0.0.0/8` or beyond the
/// directory's allocations.
pub fn asn_of_ip(ip: u32) -> Option<&'static AsnRecord> {
    if ip >> 24 != 10 {
        return None;
    }
    let idx = ((ip >> 16) & 0xFF) as usize;
    DIRECTORY.get(idx)
}

/// Dotted-quad formatting.
pub fn format_ipv4(ip: u32) -> String {
    format!("{}.{}.{}.{}", ip >> 24, (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_every_directory_entry() {
        for rec in DIRECTORY {
            let ip = ip_for(rec.name, 42).unwrap();
            assert_eq!(asn_of_ip(ip).unwrap().name, rec.name);
        }
    }

    #[test]
    fn distinct_asns_get_distinct_prefixes() {
        let a = ip_for("GOOGLE", 1).unwrap();
        let b = ip_for("OVH", 1).unwrap();
        assert_ne!(a >> 16, b >> 16);
    }

    #[test]
    fn host_index_wraps() {
        let a = ip_for("GOOGLE", 5).unwrap();
        let b = ip_for("GOOGLE", 5 + (1 << 16)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_asn_is_none() {
        assert!(ip_for("NOT-AN-ASN", 0).is_none());
    }

    #[test]
    fn non_simulated_space_is_none() {
        assert!(asn_of_ip(0xC0A80101).is_none()); // 192.168.1.1
        assert!(asn_of_ip(0x08080808).is_none()); // 8.8.8.8
    }

    #[test]
    fn formatting() {
        assert_eq!(format_ipv4(0x0A0100FF), "10.1.0.255");
        let ip = ip_for("GOOGLE", 1).unwrap();
        assert!(format_ipv4(ip).starts_with("10.0.0."));
    }
}

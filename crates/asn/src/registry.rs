//! The synthetic ARIN-style whois directory.
//!
//! One record per autonomous system name appearing anywhere in the
//! reproduction: the home networks of every registry bot and every
//! suspicious ASN of the paper's Table 8. Where the AS number is public
//! knowledge the real number is used (e.g. GOOGLE = AS15169); otherwise a
//! synthetic number in the private 64512+ range is assigned. The directory
//! stands in for the paper's live `whoisit` polling.

/// Broad class of network, used by the simulator to shape traffic realism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsnKind {
    /// Hyperscale cloud (AWS, GCP, Azure).
    Cloud,
    /// Corporate network of the bot operator itself.
    Corporate,
    /// Commodity hosting / VPS providers.
    Hosting,
    /// National telecom / consumer ISP.
    Telecom,
    /// Academic or research network.
    Academic,
    /// Mixed residential space.
    Residential,
}

/// One whois record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AsnRecord {
    /// Registry name, as printed in the paper's Table 8 (e.g. `AMAZON-02`).
    pub name: &'static str,
    /// AS number.
    pub number: u32,
    /// Registered organization.
    pub org: &'static str,
    /// ISO country code of registration.
    pub country: &'static str,
    /// Network class.
    pub kind: AsnKind,
}

macro_rules! asn {
    ($name:expr, $num:expr, $org:expr, $cc:expr, $kind:ident) => {
        AsnRecord { name: $name, number: $num, org: $org, country: $cc, kind: AsnKind::$kind }
    };
}

/// Every ASN known to the reproduction. Index order is the allocation order
/// used by [`crate::prefix`]; append-only.
pub const DIRECTORY: &[AsnRecord] = &[
    // Hyperscalers and large corporates.
    asn!("GOOGLE", 15169, "Google LLC", "US", Corporate),
    asn!("GOOGLE-CLOUD-PLATFORM", 396982, "Google LLC", "US", Cloud),
    asn!("AMAZON-02", 16509, "Amazon.com, Inc.", "US", Cloud),
    asn!("AMAZON-AES", 14618, "Amazon.com, Inc.", "US", Cloud),
    asn!("MICROSOFT-CORP-MSN-AS-BLOCK", 8075, "Microsoft Corporation", "US", Corporate),
    asn!("MICROSOFT-CORP-AS", 8068, "Microsoft Corporation", "US", Corporate),
    asn!("FACEBOOK", 32934, "Meta Platforms, Inc.", "US", Corporate),
    asn!("APPLE-ENGINEERING", 714, "Apple Inc.", "US", Corporate),
    asn!("TWITTER", 13414, "X Corp.", "US", Corporate),
    asn!("YANDEX", 13238, "Yandex LLC", "RU", Corporate),
    asn!("YAHOO-INC", 10310, "Yahoo Inc.", "US", Corporate),
    asn!("CLOUDFLARENET", 13335, "Cloudflare, Inc.", "US", Cloud),
    asn!("INTERNET-ARCHIVE", 7941, "Internet Archive", "US", Academic),
    // Hosting providers.
    asn!("OVH", 16276, "OVH SAS", "FR", Hosting),
    asn!("HETZNER-AS", 24940, "Hetzner Online GmbH", "DE", Hosting),
    asn!("DIGITALOCEAN-ASN", 14061, "DigitalOcean, LLC", "US", Hosting),
    asn!("DIGITALOCEAN-ASN31", 64531, "DigitalOcean, LLC", "US", Hosting),
    asn!("CONTABO", 51167, "Contabo GmbH", "DE", Hosting),
    asn!("M247", 9009, "M247 Europe SRL", "RO", Hosting),
    asn!("LEASEWEB-NL", 60781, "LeaseWeb Netherlands B.V.", "NL", Hosting),
    asn!("LIMESTONENETWORKS", 46475, "Limestone Networks, Inc.", "US", Hosting),
    asn!("RELIABLESITE", 23470, "ReliableSite.Net LLC", "US", Hosting),
    asn!("ROUTERHOSTING", 398101, "Cloudzy (RouterHosting)", "US", Hosting),
    asn!("IT7NET", 25820, "IT7 Networks Inc.", "CA", Hosting),
    asn!("PROSPERO-AS", 200593, "Prospero OOO", "RU", Hosting),
    asn!("DMZHOST", 64532, "DMZHOST Ltd.", "GB", Hosting),
    asn!("Clouvider", 62240, "Clouvider Limited", "GB", Hosting),
    asn!("DATACLUB", 52048, "DataClub S.A.", "LV", Hosting),
    asn!("P4NET", 64533, "P4NET Hosting", "PL", Hosting),
    asn!("CDNEXT", 212238, "CDNEXT / Datacamp", "GB", Hosting),
    asn!("VCG-AS", 64534, "VCG Hosting", "US", Hosting),
    asn!("INTERQ31", 64535, "InterQ GMO", "JP", Hosting),
    // Telecoms.
    asn!("CHINANET-BACKBONE", 4134, "China Telecom", "CN", Telecom),
    asn!("CHINA169-Backbone", 4837, "China Unicom", "CN", Telecom),
    asn!("CHINAMOBILE-CN", 9808, "China Mobile", "CN", Telecom),
    asn!("CHINANET-IDC-BJ-AP", 23724, "China Telecom IDC Beijing", "CN", Telecom),
    asn!("CHINATELECOM-JIANGSU-NANJING-IDC", 23650, "China Telecom Jiangsu", "CN", Telecom),
    asn!("CHINATELECOM-ZHEJIANG-WENZHOU-IDC", 64536, "China Telecom Zhejiang", "CN", Telecom),
    asn!("HINET", 3462, "Chunghwa Telecom", "TW", Telecom),
    asn!("Telefonica_de_Espana", 3352, "Telefonica de Espana", "ES", Telecom),
    asn!("ROSTELECOM-AS", 12389, "Rostelecom", "RU", Telecom),
    asn!("RELIANCEJIO-IN", 55836, "Reliance Jio Infocomm", "IN", Telecom),
    asn!("TENCENT-NET-AP-CN", 45090, "Tencent Cloud", "CN", Cloud),
    asn!("ALIBABA-CN-NET", 37963, "Alibaba Cloud", "CN", Cloud),
    asn!("HWCLOUDS-AS-AP", 136907, "Huawei Clouds", "CN", Cloud),
    asn!("BORUSANTELEKOM-AS", 34984, "Borusan Telekom", "TR", Telecom),
    asn!("ORANGE-BUSINESS", 2278, "Orange Business Services", "FR", Telecom),
    asn!("NTT-COMMUNICATIONS", 2914, "NTT Communications", "JP", Telecom),
    asn!("VNPT-AS-VN", 45899, "VNPT Corp", "VN", Telecom),
    asn!("NAVER-KR", 23576, "Naver Corp", "KR", Corporate),
    asn!("KAKAO-AS-KR-KR51", 64537, "Kakao Corp", "KR", Corporate),
    asn!("MAILRU-AS", 47764, "VK (Mail.Ru)", "RU", Corporate),
    asn!("TELEGRAM", 62041, "Telegram Messenger", "GB", Corporate),
    // AFRINIC / satellite / misc entries seen in Table 8.
    asn!("ORG-TNL2-AFRINIC", 64538, "TNL AFRINIC Org", "ZA", Telecom),
    asn!("ORG-VNL1-AFRINIC", 64539, "VNL AFRINIC Org", "ZA", Telecom),
    asn!("ORG-RTL1-AFRINIC", 64540, "RTL AFRINIC Org", "ZA", Telecom),
    asn!("HOL-GR", 3329, "Vodafone Greece (HOL)", "GR", Telecom),
    asn!("ASN-SATELLITE", 64541, "Satellite Uplink Services", "US", Telecom),
    asn!("ASN270353", 270353, "LATAM Hosting 270353", "BR", Hosting),
    asn!("52468", 52468, "UFINET Panama", "PA", Telecom),
    // Bot operators and specialist networks.
    asn!("AHREFS-AS-AP", 139119, "Ahrefs Pte. Ltd.", "SG", Corporate),
    asn!("SEMRUSH-AS", 64542, "Semrush Inc.", "US", Corporate),
    asn!("SEZNAM-CZ", 43037, "Seznam.cz a.s.", "CZ", Corporate),
    asn!("MOJEEK-AS", 64543, "Mojeek Ltd.", "GB", Corporate),
    asn!("SISTRIX-AS", 64544, "SISTRIX GmbH", "DE", Corporate),
    asn!("DISTRIBUTED-MAJESTIC", 64545, "Majestic-12 Distributed", "GB", Residential),
    asn!("TURNITIN-AS", 64546, "Turnitin LLC", "US", Corporate),
    asn!("CRITEO-AS", 44788, "Criteo SA", "FR", Corporate),
    asn!("PINGDOM-AS", 64547, "SolarWinds (Pingdom)", "SE", Corporate),
    asn!("CARBON60", 19397, "Carbon60 Networks", "CA", Hosting),
    asn!("W3C-MIT", 64548, "W3C / MIT", "US", Academic),
    asn!("ASK-COM", 64549, "Ask Media Group", "US", Corporate),
    asn!("LATNET", 5538, "LATNET (Riga Technical University)", "LV", Academic),
    asn!("BARRACUDA-AS", 64550, "Barracuda Networks", "US", Corporate),
    asn!("FCCN-PT", 1930, "FCCN (Arquivo.pt)", "PT", Academic),
    asn!("VARIOUS-RESIDENTIAL", 64551, "Mixed Residential Space", "US", Residential),
    asn!("UNIVERSITY-NET", 64552, "Study Institution Network", "US", Academic),
    asn!("COMCAST-7922", 7922, "Comcast Cable", "US", Residential),
    asn!("ATT-7018", 7018, "AT&T Services", "US", Residential),
    asn!("VERIZON-701", 701, "Verizon Business", "US", Residential),
    asn!("DTAG", 3320, "Deutsche Telekom", "DE", Residential),
    asn!("SKYPE-URI-NET", 64553, "Microsoft Skype Infrastructure", "US", Corporate),
];

/// A directory handle (wrapper over the static table with lookups).
#[derive(Debug, Clone, Copy, Default)]
pub struct WhoisDirectory;

impl WhoisDirectory {
    /// Look up a record by registry name (case-sensitive, as Table 8
    /// prints them).
    pub fn by_name(&self, name: &str) -> Option<&'static AsnRecord> {
        DIRECTORY.iter().find(|r| r.name == name)
    }

    /// Look up a record by AS number.
    pub fn by_number(&self, number: u32) -> Option<&'static AsnRecord> {
        DIRECTORY.iter().find(|r| r.number == number)
    }

    /// All records.
    pub fn all(&self) -> &'static [AsnRecord] {
        DIRECTORY
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        DIRECTORY.len()
    }

    /// Whether the directory is empty (never).
    pub fn is_empty(&self) -> bool {
        DIRECTORY.is_empty()
    }
}

/// Convenience free-function lookup by name.
pub fn lookup(name: &str) -> Option<&'static AsnRecord> {
    WhoisDirectory.by_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_and_numbers_unique() {
        let names: BTreeSet<&str> = DIRECTORY.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), DIRECTORY.len(), "duplicate ASN name");
        let numbers: BTreeSet<u32> = DIRECTORY.iter().map(|r| r.number).collect();
        assert_eq!(numbers.len(), DIRECTORY.len(), "duplicate ASN number");
    }

    #[test]
    fn table8_main_asns_present() {
        for name in [
            "GOOGLE",
            "OVH",
            "AMAZON-AES",
            "CHINA169-Backbone",
            "MICROSOFT-CORP-MSN-AS-BLOCK",
            "AMAZON-02",
            "FACEBOOK",
            "TWITTER",
            "YANDEX",
        ] {
            assert!(lookup(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn table8_suspicious_asns_present() {
        for name in [
            "DMZHOST",
            "AHREFS-AS-AP",
            "CONTABO",
            "DIGITALOCEAN-ASN",
            "CHINAMOBILE-CN",
            "CHINANET-BACKBONE",
            "HINET",
            "Clouvider",
            "HOL-GR",
            "MICROSOFT-CORP-AS",
            "ORG-TNL2-AFRINIC",
            "ORG-VNL1-AFRINIC",
            "GOOGLE-CLOUD-PLATFORM",
            "KAKAO-AS-KR-KR51",
            "BORUSANTELEKOM-AS",
            "Telefonica_de_Espana",
            "PROSPERO-AS",
            "TELEGRAM",
            "M247",
        ] {
            assert!(lookup(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn real_world_numbers_spot_check() {
        assert_eq!(lookup("GOOGLE").unwrap().number, 15169);
        assert_eq!(lookup("AMAZON-02").unwrap().number, 16509);
        assert_eq!(lookup("FACEBOOK").unwrap().number, 32934);
        assert_eq!(lookup("OVH").unwrap().number, 16276);
    }

    #[test]
    fn lookups() {
        let d = WhoisDirectory;
        assert_eq!(d.by_number(15169).unwrap().name, "GOOGLE");
        assert!(d.by_name("NOPE").is_none());
        assert!(d.by_number(1).is_none());
        assert!(!d.is_empty());
        assert_eq!(d.len(), DIRECTORY.len());
    }

    #[test]
    fn directory_fits_prefix_allocation() {
        // prefix.rs packs the directory index into one octet.
        assert!(DIRECTORY.len() <= 256);
    }
}

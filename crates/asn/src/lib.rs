//! # botscope-asn
//!
//! Autonomous-system intelligence for the botscope pipeline.
//!
//! The study enriches every log row with the ARIN registration data behind
//! its ASN ("we leverage the external library whoisit to poll for whois
//! information for all unique ASNs", paper §3.1), and its spoofing analysis
//! (§5.2, Table 8) reasons about which ASNs a bot's traffic *should*
//! originate from. Institutional logs and live whois are unavailable in a
//! reproduction, so this crate provides:
//!
//! * [`registry`] — a synthetic ARIN-style whois directory covering every
//!   ASN named in the paper's Table 8 plus the home networks of all
//!   registry bots; numeric IDs use the real-world AS numbers where they
//!   are public knowledge and synthetic ones otherwise,
//! * [`catalog`] — the paper's Table 8 ground truth: for each flagged bot,
//!   the dominant ASN and the suspicious minority ASNs,
//! * [`prefix`] — deterministic IPv4 address allocation per ASN for the
//!   traffic simulator, with exact reverse lookup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod prefix;
pub mod registry;

pub use catalog::{spoof_catalog, SpoofProfile};
pub use prefix::{asn_of_ip, format_ipv4, ip_for};
pub use registry::{lookup, AsnKind, AsnRecord, WhoisDirectory};

//! Equivalence of the single-pass, parallel `Experiment::analyze_table`
//! with a straightforward reference implementation of the §4 analysis,
//! field for field, on generated tables — and across worker counts.
//!
//! The reference below mirrors the pre-rework engine: standardize the
//! site subset, split legit/spoofed per directive, and re-filter each
//! window per directive. It uses the same (τ-fixed) metrics, so any
//! divergence is attributable to the engine rework, not the τ change.

use std::collections::BTreeMap;

use botscope_core::analyze::{BotDirectiveResult, Directive, Experiment};
use botscope_core::metrics::PathClasses;
use botscope_core::pipeline::standardize_rows;
use botscope_core::spoofdetect::{detect_rows, split_rows};
use botscope_simnet::phases::{is_exempt_agent, PolicyVersion};
use botscope_simnet::scenario::phase_study_table;
use botscope_simnet::SimConfig;
use botscope_stats::ztest::two_proportion_z_test;
use botscope_weblog::session::SESSION_GAP_SECS;
use botscope_weblog::table::{LogTable, RecordRow};
use botscope_weblog::time::Timestamp;

use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The §4.1 minimum accesses per phase.
const MIN_ACCESSES: usize = 5;

/// Reference analysis: the readable, multi-pass formulation.
fn reference_analyze(
    table: &LogTable,
    schedule: &botscope_simnet::phases::PhaseSchedule,
) -> Experiment {
    let site_name = format!("site-{:02}.example.edu", schedule.experiment_site);
    let classes = PathClasses::new(table);
    let site_rows: Vec<&RecordRow> = match table.interner().get(&site_name) {
        Some(site) => table.rows().iter().filter(|r| r.sitename == site).collect(),
        None => Vec::new(),
    };

    let logs = standardize_rows(table, site_rows.iter().copied());
    let spoof_report = detect_rows(table, &logs.per_bot_rows());

    let all_logs = standardize_rows(table, table.rows());
    let robots_times: BTreeMap<String, Vec<u64>> = all_logs
        .bots
        .iter()
        .map(|(name, view)| {
            let times: Vec<u64> = view
                .rows
                .iter()
                .filter(|r| classes.is_robots(r.uri_path))
                .map(|r| r.timestamp.unix())
                .collect();
            (name.clone(), times)
        })
        .collect();

    let phase_of = |version: PolicyVersion| -> (Timestamp, Timestamp) {
        schedule.window_of(version).expect("version scheduled")
    };
    let in_window =
        |r: &&RecordRow, lo: Timestamp, hi: Timestamp| r.timestamp >= lo && r.timestamp < hi;
    let (base_lo, base_hi) = phase_of(PolicyVersion::Base);

    let make_row = |view: &botscope_core::pipeline::BotRowView<'_>,
                    directive: Directive,
                    base: &[&RecordRow],
                    phase: &[&RecordRow]|
     -> BotDirectiveResult {
        let baseline = directive.counts_rows(&classes, base);
        let experiment = directive.counts_rows(&classes, phase);
        let ztest = two_proportion_z_test(
            experiment.successes,
            experiment.trials,
            baseline.successes,
            baseline.trials,
        );
        BotDirectiveResult {
            bot: view.name.clone(),
            category: view.category,
            promise: view.promise,
            sponsor: view.sponsor,
            baseline,
            experiment,
            ztest,
            checked_robots: phase.iter().any(|r| classes.is_robots(r.uri_path)),
            accesses: phase.len() as u64,
        }
    };

    let mut per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> = BTreeMap::new();
    let mut spoofed_per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> = BTreeMap::new();
    let mut spoof_volume: BTreeMap<Directive, (u64, u64)> = BTreeMap::new();

    for directive in Directive::ALL {
        let (lo, hi) = phase_of(directive.version());
        let mut rows = Vec::new();
        let mut spoofed_rows = Vec::new();
        let mut volume = (0u64, 0u64);

        for view in logs.bots.values() {
            let (legit, spoofed) = match spoof_report.finding_for(&view.name) {
                Some(f) => split_rows(f, table, &view.rows),
                None => (view.rows.clone(), Vec::new()),
            };

            let legit_base: Vec<&RecordRow> =
                legit.iter().filter(|r| in_window(r, base_lo, base_hi)).copied().collect();
            let legit_phase: Vec<&RecordRow> =
                legit.iter().filter(|r| in_window(r, lo, hi)).copied().collect();
            volume.0 += legit_phase.len() as u64;

            let exempt = is_exempt_agent(&view.name);
            if !exempt && legit_base.len() >= MIN_ACCESSES && legit_phase.len() >= MIN_ACCESSES {
                let checked = robots_times
                    .get(&view.name)
                    .is_some_and(|ts| ts.iter().any(|&t| t >= lo.unix() && t < hi.unix()));
                let mut row = make_row(view, directive, &legit_base, &legit_phase);
                row.checked_robots = checked || row.checked_robots;
                rows.push(row);
            }

            if !spoofed.is_empty() {
                let sp_base: Vec<&RecordRow> =
                    spoofed.iter().filter(|r| in_window(r, base_lo, base_hi)).copied().collect();
                let sp_phase: Vec<&RecordRow> =
                    spoofed.iter().filter(|r| in_window(r, lo, hi)).copied().collect();
                volume.1 += sp_phase.len() as u64;
                if !sp_base.is_empty() && !sp_phase.is_empty() {
                    spoofed_rows.push(make_row(view, directive, &sp_base, &sp_phase));
                }
            }
        }
        rows.sort_by(|a, b| a.bot.cmp(&b.bot));
        spoofed_rows.sort_by(|a, b| a.bot.cmp(&b.bot));
        per_directive.insert(directive, rows);
        spoofed_per_directive.insert(directive, spoofed_rows);
        spoof_volume.insert(directive, volume);
    }

    let phase_traffic = schedule
        .phases
        .iter()
        .map(|p| botscope_core::analyze::PhaseTraffic {
            version: p.version,
            unique_site_visits: table.count_sessions(
                site_rows.iter().filter(|r| r.timestamp >= p.start && r.timestamp < p.end).copied(),
                SESSION_GAP_SECS,
            ),
            unique_bot_visitors: logs
                .bots
                .values()
                .filter(|v| v.rows.iter().any(|r| r.timestamp >= p.start && r.timestamp < p.end))
                .count(),
        })
        .collect();

    Experiment {
        per_directive,
        spoofed_per_directive,
        phase_traffic,
        spoof_report,
        spoof_volume,
        truth: None,
        schedule: schedule.clone(),
    }
}

/// Field-for-field comparison of two experiments (asserts on mismatch).
fn assert_experiments_equal(a: &Experiment, b: &Experiment, label: &str) {
    assert_eq!(a.schedule, b.schedule, "{label}: schedule");
    assert_eq!(a.phase_traffic, b.phase_traffic, "{label}: phase_traffic");
    assert_eq!(a.spoof_report, b.spoof_report, "{label}: spoof_report");
    assert_eq!(a.spoof_volume, b.spoof_volume, "{label}: spoof_volume");
    for (map_a, map_b, what) in [
        (&a.per_directive, &b.per_directive, "per_directive"),
        (&a.spoofed_per_directive, &b.spoofed_per_directive, "spoofed_per_directive"),
    ] {
        assert_eq!(map_a.len(), map_b.len(), "{label}: {what} directive count");
        for (directive, rows_a) in map_a {
            let rows_b = &map_b[directive];
            assert_eq!(rows_a, rows_b, "{label}: {what}[{directive:?}]");
        }
    }
}

fn check_config(cfg: &SimConfig) {
    let out = phase_study_table(cfg);
    let reference = reference_analyze(&out.sim.table, &out.schedule);
    for threads in WORKER_COUNTS {
        let engine = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, threads);
        assert_experiments_equal(
            &engine,
            &reference,
            &format!("seed {} at {threads} workers", cfg.seed),
        );
    }
}

#[test]
fn engine_matches_reference_at_default_seed() {
    let cfg = SimConfig { scale: 0.15, sites: 4, ..SimConfig::default() };
    check_config(&cfg);
}

#[test]
fn engine_is_worker_count_invariant_at_scale() {
    // A denser run (more bots clear the ≥5-accesses filter, more spoof
    // findings), compared only across worker counts for speed.
    let cfg = SimConfig { scale: 0.3, sites: 6, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let serial = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, 1);
    assert!(
        serial.per_directive.values().any(|rows| rows.len() >= 10),
        "scale 0.3 should produce a dense experiment"
    );
    for threads in [2, 3, 8] {
        let parallel =
            Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, threads);
        assert_experiments_equal(&parallel, &serial, &format!("{threads} workers"));
    }
}

proptest! {
    // Generation dominates the runtime of each case; a handful of cases
    // over seed × scale × sites exercises sparse and dense tables,
    // including ones where some bots fail the per-phase minimum and
    // where spoof findings shift.
    #![proptest_config(ProptestConfig { cases: 6 })]
    #[test]
    fn engine_matches_reference_on_generated_tables(
        seed in 0u64..1_000_000,
        scale_pct in 2u32..12,
        sites in 2usize..6,
    ) {
        let cfg = SimConfig {
            seed,
            scale: scale_pct as f64 / 100.0,
            sites,
            ..SimConfig::default()
        };
        check_config(&cfg);
    }
}

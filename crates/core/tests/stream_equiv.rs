//! The streaming analysis engine must reproduce the table engine
//! exactly — over in-memory rows, over a CSV round-trip, over a binary
//! round-trip, and over the generator's streamed output — at every
//! worker count of the table path.

use botscope_core::analyze::Experiment;
use botscope_simnet::engine::{simulate_stream_with_threads, StreamOptions};
use botscope_simnet::scenario::phase_study_table;
use botscope_simnet::SimConfig;
use botscope_weblog::codec;
use botscope_weblog::colfmt::{BinReader, BinSink};
use botscope_weblog::sink::RowSink;
use botscope_weblog::stream::{CsvRowStream, TableRowStream};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn assert_experiments_equal(a: &Experiment, b: &Experiment, label: &str) {
    assert_eq!(a.schedule, b.schedule, "{label}: schedule");
    assert_eq!(a.phase_traffic, b.phase_traffic, "{label}: phase_traffic");
    assert_eq!(a.spoof_report, b.spoof_report, "{label}: spoof_report");
    assert_eq!(a.spoof_volume, b.spoof_volume, "{label}: spoof_volume");
    assert_eq!(a.per_directive, b.per_directive, "{label}: per_directive");
    assert_eq!(a.spoofed_per_directive, b.spoofed_per_directive, "{label}: spoofed_per_directive");
}

#[test]
fn stream_analysis_matches_table_analysis_at_any_worker_count() {
    let cfg = SimConfig { scale: 0.15, sites: 4, ..SimConfig::default() };
    let out = phase_study_table(&cfg);

    let mut table_stream = TableRowStream::new(&out.sim.table);
    let streamed =
        Experiment::analyze_stream(&mut table_stream, &out.schedule).expect("clean stream");
    assert!(
        streamed.per_directive.values().any(|rows| !rows.is_empty()),
        "scale 0.15 should produce per-bot rows"
    );
    for threads in WORKER_COUNTS {
        let tabled = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, threads);
        assert_experiments_equal(&streamed, &tabled, &format!("{threads} workers"));
    }
}

#[test]
fn stream_analysis_survives_csv_and_binary_round_trips() {
    let cfg = SimConfig { scale: 0.08, sites: 3, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let reference = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, 1);

    let csv = codec::encode_table(&out.sim.table);
    let mut csv_stream = CsvRowStream::new(csv.as_bytes()).expect("valid header");
    let from_csv =
        Experiment::analyze_stream(&mut csv_stream, &out.schedule).expect("clean CSV stream");
    assert_experiments_equal(&from_csv, &reference, "CSV round trip");

    let mut bin = Vec::new();
    botscope_weblog::colfmt::write_table(&mut bin, &out.sim.table).expect("encode binary");
    let mut bin_stream = BinReader::new(&bin[..]).expect("valid binary header");
    let from_bin =
        Experiment::analyze_stream(&mut bin_stream, &out.schedule).expect("clean binary stream");
    assert_experiments_equal(&from_bin, &reference, "binary round trip");
}

#[test]
fn generator_stream_to_binary_to_analysis_matches_in_memory_pipeline() {
    // The full bounded-memory pipeline on a small config: streamed
    // generation → binary bytes → streaming analysis, against
    // materialized generation → table analysis.
    let cfg = SimConfig { scale: 0.08, sites: 3, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let reference = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, 1);

    // Re-derive the generator's exact config the way phase_study_table
    // does (its bounds override days/start).
    let (lo, hi) = out.schedule.bounds();
    let stream_cfg = SimConfig { start: lo, days: hi.days_since(lo), ..cfg.clone() };
    let opts = StreamOptions { rows_per_run: 50_000, spill_dir: None };
    let mut bin = BinSink::new(Vec::new()).expect("bin sink");
    simulate_stream_with_threads(
        &stream_cfg,
        &out.schedule,
        2,
        &opts,
        &mut [&mut bin as &mut dyn RowSink],
    )
    .expect("streaming simulate");

    let bytes = bin.into_inner();
    let mut stream = BinReader::new(&bytes[..]).expect("valid binary header");
    let streamed =
        Experiment::analyze_stream(&mut stream, &out.schedule).expect("clean binary stream");
    assert_experiments_equal(&streamed, &reference, "generator → binary → analysis");
}

//! The streaming [`RecheckAccumulator`] must reproduce the batch §5.1
//! computations exactly: [`by_category`] over [`profiles_from_table`]
//! and [`phase_check_matrix`], for any record stream delivered in
//! nondecreasing timestamp order (the k-way merge's canonical order).

use botscope_core::recheck::{
    by_category, phase_check_matrix, profiles_from_table, RecheckAccumulator, SiteVersionWindows,
};
use botscope_simnet::PolicyVersion;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::LogTable;
use botscope_weblog::time::Timestamp;
use proptest::prelude::*;

const H: u64 = 3600;

/// Known-bot UA headers (standardize to GPTBot, bingbot, SemrushBot,
/// AhrefsBot) plus one agent no corpus entry matches.
const AGENTS: [&str; 5] = [
    "Mozilla/5.0 (compatible; GPTBot/1.1)",
    "Mozilla/5.0 (compatible; bingbot/2.0)",
    "Mozilla/5.0 (compatible; SemrushBot/7~bl)",
    "Mozilla/5.0 (compatible; AhrefsBot/7.0)",
    "totally-unknown-client/0.1",
];

const SITES: [&str; 3] = ["a.example.edu", "b.example.edu", "c.example.edu"];

fn rec(ua: &str, site: &str, t: u64, path: &str) -> AccessRecord {
    AccessRecord {
        useragent: ua.into(),
        timestamp: Timestamp::from_unix(t),
        ip_hash: 1,
        asn: "GOOGLE".into(),
        sitename: site.into(),
        uri_path: path.into(),
        status: 200,
        bytes: 1,
        referer: None,
    }
}

fn sample_windows() -> SiteVersionWindows {
    use PolicyVersion as V;
    let mut windows = SiteVersionWindows::new();
    windows.insert(
        "a.example.edu".into(),
        vec![(V::Base, 0, 400 * H), (V::V1CrawlDelay, 400 * H, 900 * H)],
    );
    windows.insert("b.example.edu".into(), vec![(V::V2EndpointOnly, 0, 900 * H)]);
    // c.example.edu has no deployment windows at all.
    windows
}

/// Push `records` (already time-sorted) through the accumulator and
/// assert both reports equal the batch computation over the same rows.
fn assert_stream_matches_batch(
    records: &[AccessRecord],
    windows: &SiteVersionWindows,
    horizon_end: u64,
) {
    let mut acc = RecheckAccumulator::new(windows.clone(), horizon_end);
    for r in records {
        acc.push(r);
    }

    let table = LogTable::from_records(records);
    let batch_agg = by_category(&profiles_from_table(&table, horizon_end));
    let batch_matrix = phase_check_matrix(&table, windows);

    assert_eq!(acc.by_category(), batch_agg, "by_category mismatch");
    assert_eq!(acc.phase_rows(), batch_matrix, "phase matrix mismatch");
}

#[test]
fn accumulator_matches_batch_on_mixed_stream() {
    let gpt = AGENTS[0];
    let bing = AGENTS[1];
    let semrush = AGENTS[2];
    let mut records = Vec::new();
    // GPTBot: dense checker across both windowed sites.
    for i in 0..70 {
        let site = SITES[(i % 2) as usize];
        records.push(rec(gpt, site, i * 10 * H, "/robots.txt"));
    }
    // bingbot: sparse checker, plus non-robots traffic.
    for i in 0..8 {
        records.push(rec(bing, SITES[2], i * 100 * H, "/robots.txt"));
        records.push(rec(bing, SITES[0], i * 100 * H + 1, "/news/item-001"));
    }
    // SemrushBot: never fetches robots.txt (Table 7 never-checker row).
    records.push(rec(semrush, SITES[0], 50 * H, "/page"));
    // Unknown agent: ignored entirely.
    records.push(rec(AGENTS[4], SITES[0], 60 * H, "/robots.txt"));
    records.sort_by_key(|r| r.timestamp.unix());

    assert_stream_matches_batch(&records, &sample_windows(), 800 * H);
}

#[test]
fn accumulator_matches_batch_when_first_check_is_past_horizon() {
    // Anchor at/after the horizon: zero complete windows, never covered.
    let records = vec![
        rec(AGENTS[0], SITES[0], 900 * H, "/robots.txt"),
        rec(AGENTS[0], SITES[0], 901 * H, "/robots.txt"),
    ];
    assert_stream_matches_batch(&records, &sample_windows(), 800 * H);
}

#[test]
fn accumulator_handles_empty_stream() {
    let windows = sample_windows();
    let acc = RecheckAccumulator::new(windows.clone(), 800 * H);
    assert_eq!(acc.by_category(), by_category(&[]));
    assert!(acc.phase_rows().is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64 })]
    #[test]
    fn accumulator_matches_batch_on_random_sorted_streams(
        raw in prop::collection::vec(
            (0usize..AGENTS.len(), 0usize..SITES.len(), 0u64..1_000, 0u8..4),
            0..120,
        ),
        horizon_hours in 1u64..1_200,
    ) {
        let mut records: Vec<AccessRecord> = raw
            .into_iter()
            .map(|(agent, site, t_hours, kind)| {
                // Bias toward robots fetches (the monitor emits only
                // those), but keep some plain traffic in the mix.
                let path = if kind > 0 { "/robots.txt" } else { "/news/item-001" };
                rec(AGENTS[agent], SITES[site], t_hours * H, path)
            })
            .collect();
        records.sort_by_key(|r| r.timestamp.unix());
        assert_stream_matches_batch(&records, &sample_windows(), horizon_hours * H);
    }
}

//! Equivalence of the parallel, cursor-based attribution pipeline with
//! its serial binary-search reference — across worker counts — and of
//! the believed-basis experiment analysis with a post-hoc correction of
//! the served-basis input.
//!
//! Belief atlases and served timelines are synthesized from a seed (an
//! xorshift walk over policy states), independently of the generated
//! traffic, so the equivalence is exercised on timelines the traffic
//! never "agreed" with: every attribution class (deliberate,
//! stale-cache, fetch-artifact) shows up.

use botscope_core::analyze::{BeliefContext, Experiment};
use botscope_core::attribution::{
    attribute_table_reference, attribute_table_with_threads, excusal_mask, score_table_reference,
    score_table_with_threads, PolicyBasis,
};
use botscope_core::pipeline::standardize_table;
use botscope_simnet::belief::{BeliefAtlas, BeliefTimeline, BelievedPolicy};
use botscope_simnet::phases::PolicyVersion;
use botscope_simnet::scenario::phase_study_table;
use botscope_simnet::server::PolicyCorpus;
use botscope_simnet::SimConfig;
use botscope_weblog::record::AccessRecord;

use proptest::prelude::*;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Tiny deterministic generator for timeline synthesis.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// A pseudo-random believed policy, covering every variant.
fn random_policy(rng: &mut XorShift) -> BelievedPolicy {
    match rng.below(6) {
        0 => BelievedPolicy::Version(PolicyVersion::Base),
        1 => BelievedPolicy::Version(PolicyVersion::V1CrawlDelay),
        2 => BelievedPolicy::Version(PolicyVersion::V2EndpointOnly),
        3 => BelievedPolicy::Version(PolicyVersion::V3DisallowAll),
        4 => BelievedPolicy::AllowAll,
        _ => BelievedPolicy::DisallowAll,
    }
}

/// A stepwise timeline with up to `max_transitions` pseudo-random
/// transitions inside `[lo, hi)`.
fn random_timeline(rng: &mut XorShift, lo: u64, hi: u64, max_transitions: u64) -> BeliefTimeline {
    let mut tl = match rng.below(4) {
        0 => BeliefTimeline::new(), // Unfetched until the first record
        _ => BeliefTimeline::always(random_policy(rng)),
    };
    let n = rng.below(max_transitions + 1);
    let mut times: Vec<u64> =
        (0..n).map(|_| lo + rng.below(hi.saturating_sub(lo).max(1))).collect();
    times.sort_unstable();
    for t in times {
        tl.record(t, random_policy(rng));
    }
    tl
}

/// Generated traffic plus synthetic belief/served state.
struct Fixture {
    table: botscope_weblog::table::LogTable,
    schedule: botscope_simnet::phases::PhaseSchedule,
    beliefs: BeliefAtlas,
    served: Vec<BeliefTimeline>,
}

fn fixture(seed: u64, scale: f64, sites: usize) -> Fixture {
    let cfg = SimConfig { seed, scale, sites, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let (lo, hi) = out.schedule.bounds();
    let (lo, hi) = (lo.unix(), hi.unix());

    // Atlas bots: every canonical bot the generated table contains, so
    // no view is skipped for being unmonitored.
    let bots: Vec<String> = standardize_table(&out.sim.table).bots.keys().cloned().collect();

    let mut rng = XorShift::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x00C0_FFEE);
    let served: Vec<BeliefTimeline> =
        (0..sites).map(|_| random_timeline(&mut rng, lo, hi, 8)).collect();
    let mut beliefs = BeliefAtlas::new(bots, sites);
    for bot in 0..beliefs.bots.len() {
        for site in 0..sites {
            *beliefs.timeline_mut(bot, site) = random_timeline(&mut rng, lo, hi, 8);
        }
    }
    Fixture { table: out.sim.table, schedule: out.schedule, beliefs, served }
}

/// Parallel attribute/score ≡ their serial references at 1/2/8 workers.
fn check_attribution_equiv(fx: &Fixture) {
    let corpus = PolicyCorpus::new();
    let attr_ref = attribute_table_reference(&fx.table, &fx.beliefs, &fx.served, &corpus);
    assert!(
        attr_ref.values().any(|c| c.violations_served() > 0),
        "synthetic timelines should produce violations"
    );
    for threads in WORKER_COUNTS {
        let attr =
            attribute_table_with_threads(&fx.table, &fx.beliefs, &fx.served, &corpus, threads);
        assert_eq!(attr, attr_ref, "attribute_table at {threads} workers");
        for basis in [PolicyBasis::Believed, PolicyBasis::Served] {
            let score_ref =
                score_table_reference(&fx.table, &fx.beliefs, &fx.served, &corpus, basis);
            let score = score_table_with_threads(
                &fx.table,
                &fx.beliefs,
                &fx.served,
                &corpus,
                basis,
                threads,
            );
            assert_eq!(score, score_ref, "score_table {basis:?} at {threads} workers");
        }
    }
}

/// Believed-basis analysis ≡ dropping the excused rows by hand and
/// re-running the plain served-basis analysis on a re-interned table.
fn check_believed_basis_equiv(fx: &Fixture) {
    let corpus = PolicyCorpus::new();
    let ctx = BeliefContext { beliefs: &fx.beliefs, served: &fx.served, corpus: &corpus };

    let mask = excusal_mask(&fx.table, &fx.beliefs, &fx.served, &corpus, 2);
    let kept: Vec<AccessRecord> = fx
        .table
        .rows()
        .iter()
        .zip(&mask)
        .filter(|&(_, &excused)| !excused)
        .map(|(row, _)| fx.table.materialize(row))
        .collect();
    let posthoc_table = botscope_weblog::table::LogTable::from_records(&kept);
    let posthoc = Experiment::analyze_table_with_threads(&posthoc_table, &fx.schedule, 1);

    for threads in WORKER_COUNTS {
        let believed = Experiment::analyze_table_with_basis(
            &fx.table,
            &fx.schedule,
            &ctx,
            PolicyBasis::Believed,
            threads,
        );
        assert_eq!(believed.per_directive, posthoc.per_directive, "{threads} workers");
        assert_eq!(
            believed.spoofed_per_directive, posthoc.spoofed_per_directive,
            "{threads} workers"
        );
        assert_eq!(believed.spoof_volume, posthoc.spoof_volume, "{threads} workers");
        assert_eq!(believed.phase_traffic, posthoc.phase_traffic, "{threads} workers");
        assert_eq!(believed.spoof_report, posthoc.spoof_report, "{threads} workers");
    }
}

/// With beliefs that mirror the served timelines exactly, nothing is
/// excused and the believed basis degenerates to the served one.
#[test]
fn believed_basis_degenerates_when_beliefs_track_served() {
    let cfg = SimConfig { scale: 0.1, sites: 4, ..SimConfig::default() };
    let out = phase_study_table(&cfg);
    let (lo, hi) = out.schedule.bounds();
    let mut rng = XorShift::new(42);
    let served: Vec<BeliefTimeline> =
        (0..4).map(|_| random_timeline(&mut rng, lo.unix(), hi.unix(), 8)).collect();
    let bots: Vec<String> = standardize_table(&out.sim.table).bots.keys().cloned().collect();
    let mut beliefs = BeliefAtlas::new(bots, 4);
    for bot in 0..beliefs.bots.len() {
        for (site, timeline) in served.iter().enumerate() {
            *beliefs.timeline_mut(bot, site) = timeline.clone();
        }
    }
    let corpus = PolicyCorpus::new();
    let mask = excusal_mask(&out.sim.table, &beliefs, &served, &corpus, 2);
    assert!(mask.iter().all(|&m| !m), "beliefs ≡ served excuses nothing");

    let ctx = BeliefContext { beliefs: &beliefs, served: &served, corpus: &corpus };
    let believed = Experiment::analyze_table_with_basis(
        &out.sim.table,
        &out.schedule,
        &ctx,
        PolicyBasis::Believed,
        2,
    );
    let served_exp = Experiment::analyze_table_with_basis(
        &out.sim.table,
        &out.schedule,
        &ctx,
        PolicyBasis::Served,
        2,
    );
    assert_eq!(believed.per_directive, served_exp.per_directive);
    assert_eq!(believed.phase_traffic, served_exp.phase_traffic);
    assert_eq!(believed.spoof_report, served_exp.spoof_report);
}

#[test]
fn parallel_attribution_matches_reference_at_default_seed() {
    let fx = fixture(9309, 0.15, 4);
    check_attribution_equiv(&fx);
}

#[test]
fn believed_basis_matches_posthoc_at_default_seed() {
    let fx = fixture(9309, 0.15, 4);
    check_believed_basis_equiv(&fx);
}

proptest! {
    // Generation dominates each case's runtime; a handful of cases over
    // seed × scale × sites covers sparse and dense tables against
    // timelines with every believed-policy variant.
    #![proptest_config(ProptestConfig { cases: 5 })]
    #[test]
    fn attribution_equivalences_hold_on_generated_tables(
        seed in 0u64..1_000_000,
        scale_pct in 2u32..10,
        sites in 2usize..6,
    ) {
        let fx = fixture(seed, scale_pct as f64 / 100.0, sites);
        check_attribution_equiv(&fx);
        check_believed_basis_equiv(&fx);
    }
}

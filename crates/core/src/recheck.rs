//! robots.txt re-check-frequency analysis (paper §5.1).
//!
//! Two outputs:
//!
//! * per-bot window coverage — did the bot re-fetch `robots.txt` within
//!   every 12/24/48/72/168-hour window of the observation period?
//!   (Figure 10 aggregates the proportion of bots per category that did),
//! * per-bot-per-phase check booleans — did the bot fetch `robots.txt`
//!   at all while a given experimental file was live? (Table 7's
//!   "Checked robots.txt" columns).

use std::collections::BTreeMap;

use botscope_simnet::PolicyVersion;
use botscope_stats::window::{window_coverage, PAPER_WINDOWS_HOURS};
use botscope_useragent::BotCategory;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::LogTable;

use crate::metrics::PathClasses;
use crate::pipeline::{standardize_table, StandardizedLogs, StandardizedTable};

/// Per-bot re-check profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RecheckProfile {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// Times (unix secs) of robots.txt fetches.
    pub check_times: Vec<u64>,
    /// For each paper window length (hours → fully covered?).
    pub covered: BTreeMap<u64, bool>,
}

impl RecheckProfile {
    /// Whether the bot checked robots.txt at all.
    pub fn ever_checked(&self) -> bool {
        !self.check_times.is_empty()
    }
}

/// Figure 10's series: per category, the proportion of (checking) bots
/// that re-check within each window length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecheckByCategory {
    /// (category, window hours) → proportion in [0, 1].
    pub proportions: BTreeMap<(BotCategory, u64), f64>,
    /// Bots per category that fetched robots.txt at least once.
    pub checking_bots: BTreeMap<BotCategory, usize>,
}

/// Build per-bot re-check profiles over an observation horizon.
///
/// `horizon_end` is the end of the dataset (unix secs); windows are
/// anchored at each bot's first robots.txt fetch, per the paper.
pub fn profiles(logs: &StandardizedLogs<'_>, horizon_end: u64) -> Vec<RecheckProfile> {
    let mut out = Vec::new();
    for view in logs.bots.values() {
        let mut check_times: Vec<u64> = view
            .records
            .iter()
            .filter(|r| r.is_robots_fetch())
            .map(|r| r.timestamp.unix())
            .collect();
        check_times.sort_unstable();
        let mut covered = BTreeMap::new();
        for &h in &PAPER_WINDOWS_HOURS {
            let ok = window_coverage(&check_times, h * 3600, horizon_end)
                .is_some_and(|c| c.fully_covered());
            covered.insert(h, ok);
        }
        out.push(RecheckProfile {
            bot: view.name.clone(),
            category: view.category,
            check_times,
            covered,
        });
    }
    out
}

/// Row-native [`profiles`]: robots.txt fetches are recognized by path
/// symbol, so the scan is string-free. Convenience wrapper over
/// [`profiles_table_with`] that classifies the interner itself.
pub fn profiles_table(logs: &StandardizedTable<'_>, horizon_end: u64) -> Vec<RecheckProfile> {
    profiles_table_with(&PathClasses::new(logs.table), logs, horizon_end)
}

/// [`profiles_table`] with a caller-supplied [`PathClasses`], so callers
/// that already classified the table's interner (report generation does)
/// don't pay for a second scan of it.
pub fn profiles_table_with(
    classes: &PathClasses,
    logs: &StandardizedTable<'_>,
    horizon_end: u64,
) -> Vec<RecheckProfile> {
    let mut out = Vec::new();
    for view in logs.bots.values() {
        let mut check_times: Vec<u64> = view
            .rows
            .iter()
            .filter(|r| classes.is_robots(r.uri_path))
            .map(|r| r.timestamp.unix())
            .collect();
        check_times.sort_unstable();
        let mut covered = BTreeMap::new();
        for &h in &PAPER_WINDOWS_HOURS {
            let ok = window_coverage(&check_times, h * 3600, horizon_end)
                .is_some_and(|c| c.fully_covered());
            covered.insert(h, ok);
        }
        out.push(RecheckProfile {
            bot: view.name.clone(),
            category: view.category,
            check_times,
            covered,
        });
    }
    out
}

/// Profiles straight from an interned table — the entry point for
/// *monitored* fetch logs: the monitoring daemon's `FetchEventLog`
/// emits `/robots.txt` rows in the ordinary access-record schema, so
/// Figure 10 recomputes from live-monitoring output exactly as it does
/// from weblog rows. (Standardizes the table, then runs
/// [`profiles_table`].)
pub fn profiles_from_table(table: &LogTable, horizon_end: u64) -> Vec<RecheckProfile> {
    let logs = standardize_table(table);
    profiles_table(&logs, horizon_end)
}

/// Aggregate profiles into Figure 10's category proportions. Only bots
/// that checked robots.txt at least once enter the denominator ("if they
/// check it at all", §5.1).
pub fn by_category(profiles: &[RecheckProfile]) -> RecheckByCategory {
    let mut out = RecheckByCategory::default();
    let mut per_cat: BTreeMap<BotCategory, Vec<&RecheckProfile>> = BTreeMap::new();
    for p in profiles {
        if p.ever_checked() {
            per_cat.entry(p.category).or_default().push(p);
        }
    }
    for (cat, ps) in per_cat {
        out.checking_bots.insert(cat, ps.len());
        for &h in &PAPER_WINDOWS_HOURS {
            let covered = ps.iter().filter(|p| p.covered[&h]).count();
            out.proportions.insert((cat, h), covered as f64 / ps.len() as f64);
        }
    }
    out
}

/// Did `records` include a robots.txt fetch? (Table 7 per-phase column.)
pub fn checked_robots(records: &[&AccessRecord]) -> bool {
    records.iter().any(|r| r.is_robots_fetch())
}

/// Per-site policy deployment windows: site name →
/// `(version, from_unix, to_unix)` spans, time-ascending — the shape
/// `SitePolicyServer::version_windows` exports per monitored site.
pub type SiteVersionWindows = BTreeMap<String, Vec<(PolicyVersion, u64, u64)>>;

/// Coalesce deployment windows across non-behavioral transitions.
///
/// `is_behavioral(from, to)` decides whether swapping `from` for `to`
/// changed any decision (the robots.txt semantic analyzer's
/// `classify_change` is the intended oracle; this crate stays
/// parser-agnostic by taking a closure). Contiguous spans whose
/// boundary transition is *not* behavioral merge into one span that
/// keeps the earlier version label — a bot that checked during either
/// half saw the same effective policy, so Table 7's "checked while vN
/// was live" columns should not credit (or debit) the cosmetic swap.
pub fn coalesce_behavioral_windows(
    windows: &SiteVersionWindows,
    is_behavioral: impl Fn(PolicyVersion, PolicyVersion) -> bool,
) -> SiteVersionWindows {
    let mut out = SiteVersionWindows::new();
    for (site, spans) in windows {
        let mut merged: Vec<(PolicyVersion, u64, u64)> = Vec::with_capacity(spans.len());
        for &(version, from, to) in spans {
            match merged.last_mut() {
                Some(prev) if prev.2 == from && !is_behavioral(prev.0, version) => {
                    prev.2 = to;
                }
                _ => merged.push((version, from, to)),
            }
        }
        out.insert(site.clone(), merged);
    }
    out
}

/// One bot's Table 7 digest-window row: per policy version, whether the
/// bot fetched robots.txt *on a site while that site was serving the
/// version* (`None` = the version was never live anywhere the bot could
/// have seen it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCheckRow {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// version index (via [`PolicyVersion::index`]) → checked?
    pub checked: [Option<bool>; 4],
    /// Total robots.txt fetches attributed to the bot.
    pub checks: u64,
}

/// Derive per-phase "checked robots.txt while vN was live" columns from
/// monitored fetch logs: thread each site's deployment windows through
/// every bot's robots.txt fetch trace. A version's cell is `Some(true)`
/// once any fetch lands inside any site's window for that version,
/// `Some(false)` when windows existed but no fetch hit them, and `None`
/// when the version was never deployed. Rows come back in bot-name
/// order; bots with no robots.txt fetch at all still appear (all
/// deployed cells `Some(false)`) — those are Table 7's never-checkers.
pub fn phase_check_matrix(table: &LogTable, windows: &SiteVersionWindows) -> Vec<PhaseCheckRow> {
    let classes = PathClasses::new(table);
    let logs = standardize_table(table);
    // Which versions were deployed at all (the `None` columns).
    let mut deployed = [false; 4];
    for spans in windows.values() {
        for &(version, _, _) in spans {
            deployed[version.index()] = true;
        }
    }
    // Resolve site symbols once, indexed by symbol so the per-row
    // lookup is O(1) even on 100k-site monitor estates.
    type SpanSlice<'w> = &'w [(PolicyVersion, u64, u64)];
    let mut site_spans: Vec<Option<SpanSlice<'_>>> = vec![None; table.interner().len()];
    for (name, spans) in windows {
        if let Some(sym) = table.interner().get(name) {
            site_spans[sym.index()] = Some(spans.as_slice());
        }
    }

    let mut out = Vec::with_capacity(logs.bots.len());
    for view in logs.bots.values() {
        let mut hit = [false; 4];
        let mut checks = 0u64;
        for row in &view.rows {
            if !classes.is_robots(row.uri_path) {
                continue;
            }
            checks += 1;
            let t = row.timestamp.unix();
            if let Some(spans) = site_spans[row.sitename.index()] {
                if let Some(&(version, _, _)) =
                    spans.iter().find(|&&(_, from, to)| t >= from && t < to)
                {
                    hit[version.index()] = true;
                }
            }
        }
        let mut checked = [None; 4];
        for i in 0..4 {
            if deployed[i] {
                checked[i] = Some(hit[i]);
            }
        }
        out.push(PhaseCheckRow {
            bot: view.name.clone(),
            category: view.category,
            checked,
            checks,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Streaming accumulators (bounded-memory §5.1 reports).
// ---------------------------------------------------------------------

/// Incremental [`window_coverage`] over one bot's robots.txt fetch
/// times, arriving in nondecreasing order.
///
/// State is O(1): the anchor, the complete-window count (fixed the
/// moment the anchor lands), the highest window index hit so far, and
/// whether any window was skipped. For sorted input this is equivalent
/// to the batch computation: the window index only ever advances, so a
/// gap (`idx > hi + 1`) can never be filled by a later fetch.
#[derive(Debug, Clone, Copy)]
struct WindowAccum {
    window_secs: u64,
    anchored: bool,
    first: u64,
    total: u64,
    counted_any: bool,
    hi: u64,
    missed: bool,
}

impl WindowAccum {
    fn new(window_secs: u64) -> WindowAccum {
        WindowAccum {
            window_secs,
            anchored: false,
            first: 0,
            total: 0,
            counted_any: false,
            hi: 0,
            missed: false,
        }
    }

    fn push(&mut self, t: u64, horizon_end: u64) {
        if !self.anchored {
            self.anchored = true;
            self.first = t;
            self.total = if t >= horizon_end { 0 } else { (horizon_end - t) / self.window_secs };
            // The anchor fetch itself hits window 0 (when any complete
            // window exists at all).
            self.counted_any = self.total > 0;
            return;
        }
        debug_assert!(t >= self.first, "rows must arrive in nondecreasing time order");
        if t < self.first || t >= horizon_end {
            return;
        }
        let idx = (t - self.first) / self.window_secs;
        if idx >= self.total {
            return;
        }
        if idx > self.hi + 1 {
            self.missed = true;
        }
        if idx > self.hi {
            self.hi = idx;
        }
    }

    /// The batch predicate: every complete window contained a fetch.
    fn fully_covered(&self) -> bool {
        self.counted_any && !self.missed && self.hi + 1 == self.total
    }
}

/// Per-bot streaming state: O(windows) coverage accumulators plus the
/// Table 7 hit flags.
#[derive(Debug, Clone)]
struct BotAccum {
    category: BotCategory,
    checks: u64,
    hit: [bool; 4],
    windows: [WindowAccum; 5],
}

/// Bounded-memory accumulator for the §5.1 monitor reports.
///
/// Feed it the daemon's streamed fetch rows — in the k-way shard
/// merge's canonical, time-ascending order — and it reproduces exactly
/// what the materialized pipeline computes as
/// [`by_category`]`(&`[`profiles_from_table`]`(..))` and
/// [`phase_check_matrix`]: the per-category re-check coverage table and
/// the monitored Table 7 matrix. State is O(bots × windows + sites),
/// never O(rows), so `monitor --stream` prints the same report bytes as
/// the materialized path without ever holding the table.
pub struct RecheckAccumulator {
    horizon_end: u64,
    windows: SiteVersionWindows,
    deployed: [bool; 4],
    standardizer: botscope_useragent::Standardizer,
    ua_cache: BTreeMap<String, Option<&'static botscope_useragent::BotSpec>>,
    bots: BTreeMap<String, BotAccum>,
}

impl RecheckAccumulator {
    /// An empty accumulator over `windows` (per-site deployment spans,
    /// known before streaming starts) and the observation horizon.
    pub fn new(windows: SiteVersionWindows, horizon_end: u64) -> RecheckAccumulator {
        let mut deployed = [false; 4];
        for spans in windows.values() {
            for &(version, _, _) in spans {
                deployed[version.index()] = true;
            }
        }
        RecheckAccumulator {
            horizon_end,
            windows,
            deployed,
            standardizer: botscope_useragent::Standardizer::new(),
            ua_cache: BTreeMap::new(),
            bots: BTreeMap::new(),
        }
    }

    /// Absorb one streamed record. Known bots register a row view even
    /// when the row is not a robots.txt fetch (Table 7's never-checker
    /// rows); anonymous agents are ignored, as in standardization.
    pub fn push(&mut self, record: &AccessRecord) {
        let Self { ua_cache, standardizer, .. } = self;
        let spec = *ua_cache
            .entry(record.useragent.clone())
            .or_insert_with(|| standardizer.standardize(&record.useragent).map(|s| s.bot));
        let Some(bot) = spec else {
            return;
        };
        let accum = self.bots.entry(bot.canonical.to_string()).or_insert_with(|| BotAccum {
            category: bot.category,
            checks: 0,
            hit: [false; 4],
            windows: PAPER_WINDOWS_HOURS.map(|h| WindowAccum::new(h * 3600)),
        });
        if !record.is_robots_fetch() {
            return;
        }
        accum.checks += 1;
        let t = record.timestamp.unix();
        for w in &mut accum.windows {
            w.push(t, self.horizon_end);
        }
        if let Some(spans) = self.windows.get(&record.sitename) {
            if let Some(&(version, _, _)) = spans.iter().find(|&&(_, from, to)| t >= from && t < to)
            {
                accum.hit[version.index()] = true;
            }
        }
    }

    /// Figure 10's aggregation — equal to
    /// `by_category(&profiles_from_table(table, horizon_end))` over the
    /// materialized equivalent of the stream.
    pub fn by_category(&self) -> RecheckByCategory {
        let mut out = RecheckByCategory::default();
        let mut per_cat: BTreeMap<BotCategory, (usize, [usize; 5])> = BTreeMap::new();
        for b in self.bots.values() {
            if b.checks == 0 {
                continue;
            }
            let entry = per_cat.entry(b.category).or_default();
            entry.0 += 1;
            for (i, w) in b.windows.iter().enumerate() {
                entry.1[i] += usize::from(w.fully_covered());
            }
        }
        for (cat, (n, covered)) in per_cat {
            out.checking_bots.insert(cat, n);
            for (i, &h) in PAPER_WINDOWS_HOURS.iter().enumerate() {
                out.proportions.insert((cat, h), covered[i] as f64 / n as f64);
            }
        }
        out
    }

    /// The monitored Table 7 matrix — equal to
    /// `phase_check_matrix(table, windows)` over the materialized
    /// equivalent of the stream.
    pub fn phase_rows(&self) -> Vec<PhaseCheckRow> {
        self.bots
            .iter()
            .map(|(name, b)| {
                let mut checked = [None; 4];
                for (i, slot) in checked.iter_mut().enumerate() {
                    if self.deployed[i] {
                        *slot = Some(b.hit[i]);
                    }
                }
                PhaseCheckRow { bot: name.clone(), category: b.category, checked, checks: b.checks }
            })
            .collect()
    }

    /// The deployment windows the accumulator was built over.
    pub fn site_windows(&self) -> &SiteVersionWindows {
        &self.windows
    }
}

impl botscope_weblog::sink::RowSink for RecheckAccumulator {
    fn write_row(&mut self, record: &AccessRecord) -> std::io::Result<()> {
        self.push(record);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::standardize;
    use botscope_weblog::time::Timestamp;

    fn rec(ua: &str, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    const H: u64 = 3600;

    #[test]
    fn frequent_checker_covers_all_windows() {
        // GPTBot checks every 10 hours for 15 days.
        let mut records = Vec::new();
        for i in 0..36 {
            records.push(rec("Mozilla/5.0 (compatible; GPTBot/1.1)", i * 10 * H, "/robots.txt"));
        }
        let logs = standardize(&records);
        let ps = profiles(&logs, 360 * H);
        let gpt = ps.iter().find(|p| p.bot == "GPTBot").unwrap();
        assert!(gpt.ever_checked());
        for &h in &PAPER_WINDOWS_HOURS {
            assert!(gpt.covered[&h], "window {h}h");
        }
    }

    #[test]
    fn sparse_checker_covers_only_long_windows() {
        // Checks every 100 hours.
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec("Mozilla/5.0 (compatible; bingbot/2.0)", i * 100 * H, "/robots.txt"));
        }
        let logs = standardize(&records);
        let ps = profiles(&logs, 1000 * H);
        let bing = ps.iter().find(|p| p.bot == "bingbot").unwrap();
        assert!(!bing.covered[&12]);
        assert!(!bing.covered[&24]);
        assert!(bing.covered[&168]);
    }

    #[test]
    fn never_checker_excluded_from_category_proportions() {
        let records = vec![
            rec("axios/1.6.2", 0, "/a"),
            rec("axios/1.6.2", 10, "/b"),
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 0, "/robots.txt"),
        ];
        let logs = standardize(&records);
        let ps = profiles(&logs, 100 * H);
        let axios = ps.iter().find(|p| p.bot == "Axios").unwrap();
        assert!(!axios.ever_checked());
        let agg = by_category(&ps);
        assert!(
            !agg.checking_bots.contains_key(&BotCategory::Other)
                || agg.checking_bots[&BotCategory::Other] == 0
                || {
                    // Axios is Other; SemrushBot is SEO. Other must not count Axios.
                    agg.checking_bots.get(&BotCategory::Other).copied().unwrap_or(0) == 0
                }
        );
        assert_eq!(agg.checking_bots[&BotCategory::SeoCrawler], 1);
    }

    #[test]
    fn category_proportions_bounds() {
        let mut records = Vec::new();
        // Two SEO bots: one dense checker, one single check.
        for i in 0..40 {
            records.push(rec(
                "Mozilla/5.0 (compatible; SemrushBot/7~bl)",
                i * 6 * H,
                "/robots.txt",
            ));
        }
        records.push(rec("Mozilla/5.0 (compatible; AhrefsBot/7.0)", 0, "/robots.txt"));
        let logs = standardize(&records);
        let ps = profiles(&logs, 240 * H);
        let agg = by_category(&ps);
        assert_eq!(agg.checking_bots[&BotCategory::SeoCrawler], 2);
        for &h in &PAPER_WINDOWS_HOURS {
            let p = agg.proportions[&(BotCategory::SeoCrawler, h)];
            assert!((0.0..=1.0).contains(&p));
        }
        // Dense checker covers 12h windows, single-check bot does not →
        // proportion is 0.5 at 12h.
        assert!((agg.proportions[&(BotCategory::SeoCrawler, 12)] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn phase_check_matrix_threads_site_windows() {
        use botscope_simnet::PolicyVersion as V;
        use botscope_weblog::table::LogTable;
        // Site A deploys Base then v1; site B stays Base. GPTBot checks
        // A during v1 and B during Base; bingbot checks nothing inside
        // any window; axios never checks at all.
        let rec_on = |ua: &str, site: &str, t: u64, path: &str| AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: "GOOGLE".into(),
            sitename: site.into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        };
        let gpt = "Mozilla/5.0 (compatible; GPTBot/1.1)";
        let bing = "Mozilla/5.0 (compatible; bingbot/2.0)";
        let records = vec![
            rec_on(gpt, "a.example.edu", 1_500, "/robots.txt"), // A: inside v1
            rec_on(gpt, "b.example.edu", 10, "/robots.txt"),    // B: inside Base
            rec_on(bing, "a.example.edu", 5_000, "/robots.txt"), // A: past every window
            rec_on("axios/1.6.2", "a.example.edu", 100, "/page"),
        ];
        let table = LogTable::from_records(&records);
        let mut windows = SiteVersionWindows::new();
        windows.insert(
            "a.example.edu".into(),
            vec![(V::Base, 0, 1_000), (V::V1CrawlDelay, 1_000, 2_000)],
        );
        windows.insert("b.example.edu".into(), vec![(V::Base, 0, 2_000)]);
        let matrix = phase_check_matrix(&table, &windows);
        let row = |bot: &str| matrix.iter().find(|r| r.bot == bot).unwrap();

        let g = row("GPTBot");
        assert_eq!(g.checked[V::Base.index()], Some(true));
        assert_eq!(g.checked[V::V1CrawlDelay.index()], Some(true));
        assert_eq!(g.checked[V::V2EndpointOnly.index()], None, "never deployed");
        assert_eq!(g.checks, 2);

        let b = row("bingbot");
        assert_eq!(b.checked[V::Base.index()], Some(false), "check landed outside the windows");
        assert_eq!(b.checks, 1);

        let a = row("Axios");
        assert_eq!(a.checks, 0);
        assert_eq!(a.checked[V::Base.index()], Some(false), "Table 7 never-checker row");
    }

    #[test]
    fn coalesce_merges_only_cosmetic_contiguous_spans() {
        use PolicyVersion as V;
        let mut windows = SiteVersionWindows::new();
        windows.insert(
            "a.example.edu".into(),
            vec![
                (V::Base, 0, 1_000),
                (V::V1CrawlDelay, 1_000, 2_000),
                (V::V2EndpointOnly, 2_000, 3_000),
            ],
        );
        // Gap between spans: never merged, even if cosmetic.
        windows
            .insert("b.example.edu".into(), vec![(V::Base, 0, 500), (V::V1CrawlDelay, 600, 900)]);

        // Oracle: only Base -> V1 is cosmetic.
        let cosmetic = |from: V, to: V| !(from == V::Base && to == V::V1CrawlDelay);
        let merged = coalesce_behavioral_windows(&windows, cosmetic);
        assert_eq!(
            merged["a.example.edu"],
            vec![(V::Base, 0, 2_000), (V::V2EndpointOnly, 2_000, 3_000)],
            "cosmetic boundary folds into the earlier span"
        );
        assert_eq!(
            merged["b.example.edu"],
            vec![(V::Base, 0, 500), (V::V1CrawlDelay, 600, 900)],
            "non-contiguous spans stay separate"
        );

        // All-behavioral oracle: identity.
        let same = coalesce_behavioral_windows(&windows, |_, _| true);
        assert_eq!(same, windows);
    }

    #[test]
    fn checked_robots_helper() {
        let a = rec("x", 0, "/robots.txt");
        let b = rec("x", 1, "/page");
        assert!(checked_robots(&[&a, &b]));
        assert!(!checked_robots(&[&b]));
        assert!(!checked_robots(&[]));
    }
}

//! robots.txt re-check-frequency analysis (paper §5.1).
//!
//! Two outputs:
//!
//! * per-bot window coverage — did the bot re-fetch `robots.txt` within
//!   every 12/24/48/72/168-hour window of the observation period?
//!   (Figure 10 aggregates the proportion of bots per category that did),
//! * per-bot-per-phase check booleans — did the bot fetch `robots.txt`
//!   at all while a given experimental file was live? (Table 7's
//!   "Checked robots.txt" columns).

use std::collections::BTreeMap;

use botscope_stats::window::{window_coverage, PAPER_WINDOWS_HOURS};
use botscope_useragent::BotCategory;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::LogTable;

use crate::metrics::PathClasses;
use crate::pipeline::{standardize_table, StandardizedLogs, StandardizedTable};

/// Per-bot re-check profile.
#[derive(Debug, Clone, PartialEq)]
pub struct RecheckProfile {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// Times (unix secs) of robots.txt fetches.
    pub check_times: Vec<u64>,
    /// For each paper window length (hours → fully covered?).
    pub covered: BTreeMap<u64, bool>,
}

impl RecheckProfile {
    /// Whether the bot checked robots.txt at all.
    pub fn ever_checked(&self) -> bool {
        !self.check_times.is_empty()
    }
}

/// Figure 10's series: per category, the proportion of (checking) bots
/// that re-check within each window length.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecheckByCategory {
    /// (category, window hours) → proportion in [0, 1].
    pub proportions: BTreeMap<(BotCategory, u64), f64>,
    /// Bots per category that fetched robots.txt at least once.
    pub checking_bots: BTreeMap<BotCategory, usize>,
}

/// Build per-bot re-check profiles over an observation horizon.
///
/// `horizon_end` is the end of the dataset (unix secs); windows are
/// anchored at each bot's first robots.txt fetch, per the paper.
pub fn profiles(logs: &StandardizedLogs<'_>, horizon_end: u64) -> Vec<RecheckProfile> {
    let mut out = Vec::new();
    for view in logs.bots.values() {
        let mut check_times: Vec<u64> = view
            .records
            .iter()
            .filter(|r| r.is_robots_fetch())
            .map(|r| r.timestamp.unix())
            .collect();
        check_times.sort_unstable();
        let mut covered = BTreeMap::new();
        for &h in &PAPER_WINDOWS_HOURS {
            let ok = window_coverage(&check_times, h * 3600, horizon_end)
                .map(|c| c.fully_covered())
                .unwrap_or(false);
            covered.insert(h, ok);
        }
        out.push(RecheckProfile {
            bot: view.name.clone(),
            category: view.category,
            check_times,
            covered,
        });
    }
    out
}

/// Row-native [`profiles`]: robots.txt fetches are recognized by path
/// symbol, so the scan is string-free. Convenience wrapper over
/// [`profiles_table_with`] that classifies the interner itself.
pub fn profiles_table(logs: &StandardizedTable<'_>, horizon_end: u64) -> Vec<RecheckProfile> {
    profiles_table_with(&PathClasses::new(logs.table), logs, horizon_end)
}

/// [`profiles_table`] with a caller-supplied [`PathClasses`], so callers
/// that already classified the table's interner (report generation does)
/// don't pay for a second scan of it.
pub fn profiles_table_with(
    classes: &PathClasses,
    logs: &StandardizedTable<'_>,
    horizon_end: u64,
) -> Vec<RecheckProfile> {
    let mut out = Vec::new();
    for view in logs.bots.values() {
        let mut check_times: Vec<u64> = view
            .rows
            .iter()
            .filter(|r| classes.is_robots(r.uri_path))
            .map(|r| r.timestamp.unix())
            .collect();
        check_times.sort_unstable();
        let mut covered = BTreeMap::new();
        for &h in &PAPER_WINDOWS_HOURS {
            let ok = window_coverage(&check_times, h * 3600, horizon_end)
                .map(|c| c.fully_covered())
                .unwrap_or(false);
            covered.insert(h, ok);
        }
        out.push(RecheckProfile {
            bot: view.name.clone(),
            category: view.category,
            check_times,
            covered,
        });
    }
    out
}

/// Profiles straight from an interned table — the entry point for
/// *monitored* fetch logs: the monitoring daemon's `FetchEventLog`
/// emits `/robots.txt` rows in the ordinary access-record schema, so
/// Figure 10 recomputes from live-monitoring output exactly as it does
/// from weblog rows. (Standardizes the table, then runs
/// [`profiles_table`].)
pub fn profiles_from_table(table: &LogTable, horizon_end: u64) -> Vec<RecheckProfile> {
    let logs = standardize_table(table);
    profiles_table(&logs, horizon_end)
}

/// Aggregate profiles into Figure 10's category proportions. Only bots
/// that checked robots.txt at least once enter the denominator ("if they
/// check it at all", §5.1).
pub fn by_category(profiles: &[RecheckProfile]) -> RecheckByCategory {
    let mut out = RecheckByCategory::default();
    let mut per_cat: BTreeMap<BotCategory, Vec<&RecheckProfile>> = BTreeMap::new();
    for p in profiles {
        if p.ever_checked() {
            per_cat.entry(p.category).or_default().push(p);
        }
    }
    for (cat, ps) in per_cat {
        out.checking_bots.insert(cat, ps.len());
        for &h in &PAPER_WINDOWS_HOURS {
            let covered = ps.iter().filter(|p| p.covered[&h]).count();
            out.proportions.insert((cat, h), covered as f64 / ps.len() as f64);
        }
    }
    out
}

/// Did `records` include a robots.txt fetch? (Table 7 per-phase column.)
pub fn checked_robots(records: &[&AccessRecord]) -> bool {
    records.iter().any(|r| r.is_robots_fetch())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::standardize;
    use botscope_weblog::time::Timestamp;

    fn rec(ua: &str, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    const H: u64 = 3600;

    #[test]
    fn frequent_checker_covers_all_windows() {
        // GPTBot checks every 10 hours for 15 days.
        let mut records = Vec::new();
        for i in 0..36 {
            records.push(rec("Mozilla/5.0 (compatible; GPTBot/1.1)", i * 10 * H, "/robots.txt"));
        }
        let logs = standardize(&records);
        let ps = profiles(&logs, 360 * H);
        let gpt = ps.iter().find(|p| p.bot == "GPTBot").unwrap();
        assert!(gpt.ever_checked());
        for &h in &PAPER_WINDOWS_HOURS {
            assert!(gpt.covered[&h], "window {h}h");
        }
    }

    #[test]
    fn sparse_checker_covers_only_long_windows() {
        // Checks every 100 hours.
        let mut records = Vec::new();
        for i in 0..10 {
            records.push(rec("Mozilla/5.0 (compatible; bingbot/2.0)", i * 100 * H, "/robots.txt"));
        }
        let logs = standardize(&records);
        let ps = profiles(&logs, 1000 * H);
        let bing = ps.iter().find(|p| p.bot == "bingbot").unwrap();
        assert!(!bing.covered[&12]);
        assert!(!bing.covered[&24]);
        assert!(bing.covered[&168]);
    }

    #[test]
    fn never_checker_excluded_from_category_proportions() {
        let records = vec![
            rec("axios/1.6.2", 0, "/a"),
            rec("axios/1.6.2", 10, "/b"),
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 0, "/robots.txt"),
        ];
        let logs = standardize(&records);
        let ps = profiles(&logs, 100 * H);
        let axios = ps.iter().find(|p| p.bot == "Axios").unwrap();
        assert!(!axios.ever_checked());
        let agg = by_category(&ps);
        assert!(
            !agg.checking_bots.contains_key(&BotCategory::Other)
                || agg.checking_bots[&BotCategory::Other] == 0
                || {
                    // Axios is Other; SemrushBot is SEO. Other must not count Axios.
                    agg.checking_bots.get(&BotCategory::Other).copied().unwrap_or(0) == 0
                }
        );
        assert_eq!(agg.checking_bots[&BotCategory::SeoCrawler], 1);
    }

    #[test]
    fn category_proportions_bounds() {
        let mut records = Vec::new();
        // Two SEO bots: one dense checker, one single check.
        for i in 0..40 {
            records.push(rec(
                "Mozilla/5.0 (compatible; SemrushBot/7~bl)",
                i * 6 * H,
                "/robots.txt",
            ));
        }
        records.push(rec("Mozilla/5.0 (compatible; AhrefsBot/7.0)", 0, "/robots.txt"));
        let logs = standardize(&records);
        let ps = profiles(&logs, 240 * H);
        let agg = by_category(&ps);
        assert_eq!(agg.checking_bots[&BotCategory::SeoCrawler], 2);
        for &h in &PAPER_WINDOWS_HOURS {
            let p = agg.proportions[&(BotCategory::SeoCrawler, h)];
            assert!((0.0..=1.0).contains(&p));
        }
        // Dense checker covers 12h windows, single-check bot does not →
        // proportion is 0.5 at 12h.
        assert!((agg.proportions[&(BotCategory::SeoCrawler, 12)] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn checked_robots_helper() {
        let a = rec("x", 0, "/robots.txt");
        let b = rec("x", 1, "/page");
        assert!(checked_robots(&[&a, &b]));
        assert!(!checked_robots(&[&b]));
        assert!(!checked_robots(&[]));
    }
}

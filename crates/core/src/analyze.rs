//! Full-experiment analysis: the §4 pipeline end to end.
//!
//! Given the 8-week phase-study logs (generated or real), this module:
//!
//! 1. standardizes user agents to canonical bots — **once**, estate-wide
//!    — and carves out each bot's experiment-site rows and robots.txt
//!    fetch times in the same sweep,
//! 2. flags possible spoofing with the §5.2 ASN-dominance heuristic and
//!    sets the flagged minority-network requests aside,
//! 3. buckets every bot's rows into the four deployment-phase windows
//!    (legit and spoofed separately) in one pass,
//! 4. computes, per bot per directive, the §4.2 compliance counts under
//!    the experimental file and under the baseline file, with the pooled
//!    two-proportion z-test between them (Table 10, Figures 9/11),
//! 5. aggregates categories with access-weighted averages (Table 5),
//! 6. derives the traffic summary per version (Table 4) and the
//!    skipped-robots.txt rows (Table 7).
//!
//! Steps 3–4 are independent per bot, so they fan out over the same
//! `std::thread::scope` worker pattern simnet generation uses
//! (`BOTSCOPE_THREADS` knob); the merge is by bot name, making the
//! output identical at any worker count.

use std::collections::BTreeMap;

use botscope_stats::describe::WeightedMeanAccumulator;
use botscope_stats::ztest::{two_proportion_z_test, ZTestResult};
use botscope_useragent::{BotCategory, RobotsPromise};
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::SESSION_GAP_SECS;
use botscope_weblog::table::{LogTable, RecordRow};
use botscope_weblog::time::Timestamp;

use botscope_simnet::belief::{BeliefAtlas, BeliefTimeline};
use botscope_simnet::engine::{worker_threads, GroundTruth};
use botscope_simnet::phases::{is_exempt_agent, PhaseSchedule, PolicyVersion};
use botscope_simnet::scenario::{phase_study_table, PhaseStudyTableOutput};
use botscope_simnet::server::PolicyCorpus;
use botscope_simnet::SimConfig;

use crate::attribution::{excusal_mask, PolicyBasis};
use crate::metrics::{
    crawl_delay_counts, crawl_delay_counts_rows, disallow_counts, disallow_counts_rows,
    endpoint_counts, endpoint_counts_rows, DirectiveCounts, PathClasses, CRAWL_DELAY_SECS,
};
use crate::pipeline::{
    run_indexed, standardize_rows, standardize_table_with_threads, BotRowView, StandardizedTable,
};
use crate::spoofdetect::{
    analyze_bot_rows, SpoofFinding, SpoofReport, DOMINANCE_THRESHOLD, MIN_DETECT_REQUESTS,
};

/// The three experimental directives (paper §4.1, v1–v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Directive {
    /// v1: 30-second crawl delay.
    CrawlDelay,
    /// v2: `/page-data/*` endpoint only.
    Endpoint,
    /// v3: disallow everything.
    Disallow,
}

impl Directive {
    /// All directives in deployment order.
    pub const ALL: [Directive; 3] =
        [Directive::CrawlDelay, Directive::Endpoint, Directive::Disallow];

    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            Directive::CrawlDelay => "Crawl delay",
            Directive::Endpoint => "Endpoint access",
            Directive::Disallow => "Disallow all",
        }
    }

    /// The robots.txt version that deploys this directive.
    pub fn version(self) -> PolicyVersion {
        match self {
            Directive::CrawlDelay => PolicyVersion::V1CrawlDelay,
            Directive::Endpoint => PolicyVersion::V2EndpointOnly,
            Directive::Disallow => PolicyVersion::V3DisallowAll,
        }
    }

    /// Compute this directive's compliance counts over a record set.
    pub fn counts(self, records: &[&AccessRecord]) -> DirectiveCounts {
        match self {
            Directive::CrawlDelay => crawl_delay_counts(records, CRAWL_DELAY_SECS),
            Directive::Endpoint => endpoint_counts(records),
            Directive::Disallow => disallow_counts(records),
        }
    }

    /// Row-native [`Directive::counts`].
    pub fn counts_rows(self, classes: &PathClasses, rows: &[&RecordRow]) -> DirectiveCounts {
        match self {
            Directive::CrawlDelay => crawl_delay_counts_rows(rows, CRAWL_DELAY_SECS),
            Directive::Endpoint => endpoint_counts_rows(classes, rows),
            Directive::Disallow => disallow_counts_rows(classes, rows),
        }
    }
}

/// One bot × directive analysis row.
#[derive(Debug, Clone, PartialEq)]
pub struct BotDirectiveResult {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// Public robots.txt promise.
    pub promise: RobotsPromise,
    /// Sponsoring entity.
    pub sponsor: &'static str,
    /// Counts under the baseline file.
    pub baseline: DirectiveCounts,
    /// Counts under the experimental file.
    pub experiment: DirectiveCounts,
    /// Pooled two-proportion z-test baseline→experiment (`None` = the
    /// paper's `N/A`).
    pub ztest: Option<ZTestResult>,
    /// Whether the bot fetched robots.txt during the experimental phase.
    pub checked_robots: bool,
    /// Record count during the experimental phase (the Table 5 weight).
    pub accesses: u64,
}

impl BotDirectiveResult {
    /// Experiment-phase compliance ratio, if defined.
    pub fn compliance(&self) -> Option<f64> {
        self.experiment.ratio()
    }

    /// Whether the baseline→experiment shift is significant at p ≤ 0.05.
    pub fn significant(&self) -> bool {
        self.ztest.as_ref().is_some_and(|t| t.significant_at(0.05))
    }
}

/// Table 4 row: traffic under one robots.txt version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// The deployed version.
    pub version: PolicyVersion,
    /// Sessionized site visits during the phase.
    pub unique_site_visits: usize,
    /// Distinct known bots observed.
    pub unique_bot_visitors: usize,
}

/// Table 5 cell: weighted compliance and its total weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryCell {
    /// Access-weighted mean compliance.
    pub compliance: f64,
    /// Total accesses behind the mean.
    pub weight: u64,
}

/// Table 5: category × directive.
#[derive(Debug, Clone, Default)]
pub struct CategoryTable {
    /// Rows in category order.
    pub rows: Vec<(BotCategory, BTreeMap<Directive, CategoryCell>, f64)>,
    /// The access-weighted all-bot average per directive (bottom row).
    pub directive_average: BTreeMap<Directive, f64>,
}

/// Everything the evaluation section needs.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Non-spoofed per-bot rows, per directive (Fig 9 / Tables 6, 10).
    pub per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>>,
    /// Spoof-flagged per-bot rows, per directive (Fig 11 / Appendix A.2).
    pub spoofed_per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>>,
    /// Table 4.
    pub phase_traffic: Vec<PhaseTraffic>,
    /// The §5.2 detection over the experiment-site logs (Table 8 inputs).
    pub spoof_report: SpoofReport,
    /// Legit vs spoofed request counts per directive phase (Table 9).
    pub spoof_volume: BTreeMap<Directive, (u64, u64)>,
    /// The generator's planted truth, when the logs came from simnet.
    pub truth: Option<GroundTruth>,
    /// The schedule analyzed.
    pub schedule: PhaseSchedule,
}

/// Minimum accesses per phase for a bot to enter the per-bot analysis
/// (paper §4.1: "filter out bots that accessed the site less than 5 times
/// under any robots.txt version").
pub const MIN_ACCESSES: usize = 5;

/// Borrowed belief-layer inputs for basis-corrected analysis
/// ([`Experiment::analyze_table_with_basis`]).
pub struct BeliefContext<'a> {
    /// Per-(bot, site) believed-policy timelines from the monitor.
    pub beliefs: &'a BeliefAtlas,
    /// Served ground-truth timelines per estate site.
    pub served: &'a [BeliefTimeline],
    /// The policy corpus the timelines reference.
    pub corpus: &'a PolicyCorpus,
}

/// The experiment site's hostname under `schedule`.
fn experiment_site_name(schedule: &PhaseSchedule) -> String {
    format!("site-{:02}.example.edu", schedule.experiment_site)
}

impl Experiment {
    /// Generate the phase study with `cfg` and analyze it.
    pub fn run(cfg: &SimConfig) -> Experiment {
        let PhaseStudyTableOutput { sim, schedule } = phase_study_table(cfg);
        let mut exp = Experiment::analyze_table(&sim.table, &schedule);
        exp.truth = Some(sim.truth);
        exp
    }

    /// Analyze an arbitrary record set against a schedule. Thin adapter
    /// over [`Experiment::analyze_table`]: the records are interned once
    /// and every downstream stage runs on symbol-keyed rows.
    pub fn analyze(records: &[AccessRecord], schedule: &PhaseSchedule) -> Experiment {
        Experiment::analyze_table(&LogTable::from_records(records), schedule)
    }

    /// Analyze an interned table against a schedule — the native path.
    ///
    /// This is a single-pass engine: the estate is standardized **once**,
    /// every bot's rows are bucketed into the four phase windows (and
    /// split legit/spoofed) in one sweep, and the per-bot directive
    /// analysis fans out over [`worker_threads`] scoped workers with a
    /// deterministic merge by bot name — output is identical at any
    /// worker count (`BOTSCOPE_THREADS` knob, as in simnet generation).
    pub fn analyze_table(table: &LogTable, schedule: &PhaseSchedule) -> Experiment {
        Experiment::analyze_table_with_threads(table, schedule, worker_threads())
    }

    /// [`Experiment::analyze_table`] with an explicit worker count.
    pub fn analyze_table_with_threads(
        table: &LogTable,
        schedule: &PhaseSchedule,
        threads: usize,
    ) -> Experiment {
        assert!(threads >= 1, "at least one worker required");
        let site = table.interner().get(&experiment_site_name(schedule));
        let site_rows: Vec<&RecordRow> = match site {
            Some(site) => table.rows().iter().filter(|r| r.sitename == site).collect(),
            None => Vec::new(),
        };

        // The one standardization sweep (distinct agents sharded over the
        // same worker pool). Estate-wide, because "checked robots.txt"
        // (Table 7) is judged estate-wide: a bot that fetched any of the
        // institution's robots.txt files during a phase demonstrably
        // consulted policy, even if the fetch landed on a sister site.
        // Every per-bot slice below is carved out of this pass; nothing
        // downstream touches a raw user-agent string again.
        let all_logs = standardize_table_with_threads(table, threads);
        Self::analyze_standardized(table, schedule, threads, &all_logs, site_rows)
    }

    /// Analyze under a policy basis. `Served` is the plain
    /// [`Experiment::analyze_table_with_threads`] path; `Believed`
    /// first drops every row the belief layer *excuses* (stale-cache
    /// and fetch-artifact violations, per
    /// [`excusal_mask`](crate::attribution::excusal_mask)) and analyzes
    /// the remainder — Tables 5/6/10 recomputed under
    /// attribution-corrected compliance. With beliefs that track the
    /// served timelines exactly (instant refresh, always-healthy
    /// weather) no row is excused and the two bases coincide.
    pub fn analyze_table_with_basis(
        table: &LogTable,
        schedule: &PhaseSchedule,
        ctx: &BeliefContext<'_>,
        basis: PolicyBasis,
        threads: usize,
    ) -> Experiment {
        match basis {
            PolicyBasis::Served => Experiment::analyze_table_with_threads(table, schedule, threads),
            PolicyBasis::Believed => {
                let mask = excusal_mask(table, ctx.beliefs, ctx.served, ctx.corpus, threads);
                let kept: Vec<&RecordRow> = table
                    .rows()
                    .iter()
                    .zip(&mask)
                    .filter_map(|(row, &excused)| (!excused).then_some(row))
                    .collect();
                let all_logs = standardize_rows(table, kept.iter().copied());
                let site = table.interner().get(&experiment_site_name(schedule));
                let site_rows: Vec<&RecordRow> = match site {
                    Some(site) => kept.iter().filter(|r| r.sitename == site).copied().collect(),
                    None => Vec::new(),
                };
                Self::analyze_standardized(table, schedule, threads, &all_logs, site_rows)
            }
        }
    }

    /// Shared back half of the analysis: phase windows, the per-bot
    /// fan-out, and the deterministic merge. `all_logs` and `site_rows`
    /// are the (possibly basis-filtered) standardized views and
    /// experiment-site rows; `table` stays the full interned table so
    /// symbol lookups resolve.
    fn analyze_standardized(
        table: &LogTable,
        schedule: &PhaseSchedule,
        threads: usize,
        all_logs: &StandardizedTable<'_>,
        site_rows: Vec<&RecordRow>,
    ) -> Experiment {
        let classes = PathClasses::new(table);
        let site = table.interner().get(&experiment_site_name(schedule));
        let views: Vec<&BotRowView<'_>> = all_logs.bots.values().collect();

        let phase_of = |version: PolicyVersion| -> (Timestamp, Timestamp) {
            schedule.window_of(version).expect("version scheduled")
        };
        let windows = PhaseWindows {
            base: phase_of(PolicyVersion::Base),
            directives: Directive::ALL.map(|d| phase_of(d.version())),
        };

        // Fan the whole per-bot stage out — site slicing, spoof
        // detection, phase bucketing, and directive scoring are all
        // independent per bot. Results come back in bot-name order (the
        // order of `views`), so output is worker-count invariant.
        let mut outcomes: Vec<BotOutcome> = run_indexed(views.len(), threads, |i| {
            analyze_bot(table, &classes, &windows, schedule, site, views[i])
        });

        // The detector emits findings sorted by bot name — `views` order.
        let spoof_report =
            SpoofReport { findings: outcomes.iter().filter_map(|o| o.finding.clone()).collect() };

        let mut per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> = BTreeMap::new();
        let mut spoofed_per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> =
            BTreeMap::new();
        let mut spoof_volume: BTreeMap<Directive, (u64, u64)> = BTreeMap::new();
        for (idx, directive) in Directive::ALL.into_iter().enumerate() {
            let rows: Vec<BotDirectiveResult> =
                outcomes.iter_mut().filter_map(|o| o.legit[idx].take()).collect();
            let spoofed_rows: Vec<BotDirectiveResult> =
                outcomes.iter_mut().filter_map(|o| o.spoofed[idx].take()).collect();
            let volume = outcomes
                .iter()
                .fold((0u64, 0u64), |acc, o| (acc.0 + o.volume[idx].0, acc.1 + o.volume[idx].1));
            per_directive.insert(directive, rows);
            spoofed_per_directive.insert(directive, spoofed_rows);
            spoof_volume.insert(directive, volume);
        }

        let phase_traffic = phase_traffic(table, &site_rows, &outcomes, schedule, threads);

        Experiment {
            per_directive,
            spoofed_per_directive,
            phase_traffic,
            spoof_report,
            spoof_volume,
            truth: None,
            schedule: schedule.clone(),
        }
    }

    /// Table 5: access-weighted category compliance. Categories with no
    /// dedicated row in the paper's table (archivers, developer helpers,
    /// scrapers, AI agents, uncategorized) fold into "Other", matching the
    /// paper's presentation.
    pub fn category_table(&self) -> CategoryTable {
        let mut categories: Vec<BotCategory> = Vec::new();
        for rows in self.per_directive.values() {
            for r in rows {
                let cat = table5_category(r.category);
                if !categories.contains(&cat) {
                    categories.push(cat);
                }
            }
        }
        categories.sort();

        let mut table = CategoryTable::default();
        for cat in categories {
            let mut cells: BTreeMap<Directive, CategoryCell> = BTreeMap::new();
            let mut row_avg = Vec::new();
            for directive in Directive::ALL {
                let mut acc = WeightedMeanAccumulator::new();
                let mut weight = 0u64;
                for r in &self.per_directive[&directive] {
                    if table5_category(r.category) == cat {
                        if let Some(c) = r.compliance() {
                            acc.add(c, r.accesses as f64);
                            weight += r.accesses;
                        }
                    }
                }
                if let Some(m) = acc.finish() {
                    cells.insert(directive, CategoryCell { compliance: m, weight });
                    row_avg.push(m);
                }
            }
            if cells.is_empty() {
                continue;
            }
            let avg = row_avg.iter().sum::<f64>() / row_avg.len() as f64;
            table.rows.push((cat, cells, avg));
        }

        for directive in Directive::ALL {
            let mut acc = WeightedMeanAccumulator::new();
            for r in &self.per_directive[&directive] {
                if let Some(c) = r.compliance() {
                    acc.add(c, r.accesses as f64);
                }
            }
            if let Some(m) = acc.finish() {
                table.directive_average.insert(directive, m);
            }
        }
        table
    }

    /// Bots that skipped the robots.txt check during at least one
    /// experimental phase (Table 7): (bot, per-directive (checked,
    /// compliance)).
    pub fn skipped_checks(&self) -> Vec<(String, SkippedChecks)> {
        let mut per_bot: BTreeMap<String, SkippedChecks> = BTreeMap::new();
        for (&directive, rows) in &self.per_directive {
            for r in rows {
                per_bot
                    .entry(r.bot.clone())
                    .or_default()
                    .insert(directive, (r.checked_robots, r.compliance()));
            }
        }
        per_bot
            .into_iter()
            .filter(|(_, dirs)| dirs.values().any(|&(checked, _)| !checked))
            .collect()
    }
}

/// Per-directive (checked robots.txt?, compliance) map of one bot —
/// the Table 7 row payload.
pub type SkippedChecks = BTreeMap<Directive, (bool, Option<f64>)>;

/// The display category a bot takes in Table 5: the paper's nine rows,
/// with everything else under "Other".
pub fn table5_category(cat: BotCategory) -> BotCategory {
    match cat {
        BotCategory::AiAssistant
        | BotCategory::AiDataScraper
        | BotCategory::AiSearchCrawler
        | BotCategory::Fetcher
        | BotCategory::HeadlessBrowser
        | BotCategory::IntelligenceGatherer
        | BotCategory::SeoCrawler
        | BotCategory::SearchEngineCrawler => cat,
        _ => BotCategory::Other,
    }
}

/// The deployment windows the engine buckets into: the baseline phase
/// plus one window per directive, in [`Directive::ALL`] order.
struct PhaseWindows {
    base: (Timestamp, Timestamp),
    directives: [(Timestamp, Timestamp); 3],
}

/// Everything one bot contributes to the experiment, per directive
/// (index = position in [`Directive::ALL`]).
struct BotOutcome {
    /// The §5.2 dominance finding, if the bot is flagged.
    finding: Option<SpoofFinding>,
    legit: [Option<BotDirectiveResult>; 3],
    spoofed: [Option<BotDirectiveResult>; 3],
    /// (legitimate, spoofed) request counts per directive phase.
    volume: [(u64, u64); 3],
    /// Whether the bot visited the experiment site during each entry of
    /// `schedule.phases` (the Table 4 bot count).
    phase_presence: Vec<bool>,
}

/// The complete per-bot stage: slice the experiment-site rows and
/// estate-wide robots.txt fetch times out of the bot's view, run the
/// §5.2 dominance detection, split legit/spoofed and bucket every row
/// into its phase window in a single sweep, then score each directive.
fn analyze_bot(
    table: &LogTable,
    classes: &PathClasses,
    windows: &PhaseWindows,
    schedule: &PhaseSchedule,
    site: Option<botscope_weblog::intern::Sym>,
    view: &BotRowView<'_>,
) -> BotOutcome {
    let in_window =
        |r: &RecordRow, (lo, hi): (Timestamp, Timestamp)| r.timestamp >= lo && r.timestamp < hi;

    let site_rows: Vec<&RecordRow> = match site {
        Some(s) => view.rows.iter().filter(|r| r.sitename == s).copied().collect(),
        None => Vec::new(),
    };
    // Estate-wide robots.txt fetch times — Table 7 judges "checked
    // robots.txt" across the whole institution.
    let robots_times: Vec<u64> = view
        .rows
        .iter()
        .filter(|r| classes.is_robots(r.uri_path))
        .map(|r| r.timestamp.unix())
        .collect();

    // The dominance detection reads only this bot's site rows.
    let finding =
        analyze_bot_rows(table, &view.name, &site_rows, DOMINANCE_THRESHOLD, MIN_DETECT_REQUESTS);

    // Buckets: [base, crawl-delay, endpoint, disallow] × {legit, spoofed}.
    // The legit/spoofed partition is phase-independent, so one pass over
    // the bot's rows fills all eight buckets.
    let main_asn = finding.as_ref().and_then(|f| table.interner().get(&f.main_asn));
    let mut legit: [Vec<&RecordRow>; 4] = Default::default();
    let mut spoofed: [Vec<&RecordRow>; 4] = Default::default();
    for &row in &site_rows {
        let buckets =
            if finding.is_none() || Some(row.asn) == main_asn { &mut legit } else { &mut spoofed };
        if in_window(row, windows.base) {
            buckets[0].push(row);
        }
        for (i, &w) in windows.directives.iter().enumerate() {
            if in_window(row, w) {
                buckets[i + 1].push(row);
            }
        }
    }

    // Exempt SEO bots are excluded from the *legitimate* per-bot
    // analysis (they keep full access under v2/v3; the paper's Table 6
    // and Figure 9 omit them) — but their spoofed impostors are analyzed
    // like everyone else's (the paper's Figure 11 shows Googlebot,
    // bingbot and Baiduspider spoof instances).
    let exempt = is_exempt_agent(&view.name);

    let phase_presence = schedule
        .phases
        .iter()
        .map(|p| site_rows.iter().any(|r| r.timestamp >= p.start && r.timestamp < p.end))
        .collect();
    let mut outcome = BotOutcome {
        finding,
        legit: [None, None, None],
        spoofed: [None, None, None],
        volume: [(0, 0); 3],
        phase_presence,
    };
    for (idx, directive) in Directive::ALL.into_iter().enumerate() {
        let (lo, hi) = windows.directives[idx];
        let (legit_base, legit_phase) = (&legit[0], &legit[idx + 1]);
        outcome.volume[idx].0 = legit_phase.len() as u64;
        if !exempt && legit_base.len() >= MIN_ACCESSES && legit_phase.len() >= MIN_ACCESSES {
            let checked = robots_times.iter().any(|&t| t >= lo.unix() && t < hi.unix());
            let mut row = make_row(view, classes, directive, legit_base, legit_phase);
            row.checked_robots = checked || row.checked_robots;
            outcome.legit[idx] = Some(row);
        }

        let (sp_base, sp_phase) = (&spoofed[0], &spoofed[idx + 1]);
        outcome.volume[idx].1 = sp_phase.len() as u64;
        if !sp_base.is_empty() && !sp_phase.is_empty() {
            outcome.spoofed[idx] = Some(make_row(view, classes, directive, sp_base, sp_phase));
        }
    }
    outcome
}

fn make_row(
    view: &BotRowView<'_>,
    classes: &PathClasses,
    directive: Directive,
    base: &[&RecordRow],
    phase: &[&RecordRow],
) -> BotDirectiveResult {
    let baseline = directive.counts_rows(classes, base);
    let experiment = directive.counts_rows(classes, phase);
    let ztest = two_proportion_z_test(
        experiment.successes,
        experiment.trials,
        baseline.successes,
        baseline.trials,
    );
    BotDirectiveResult {
        bot: view.name.clone(),
        category: view.category,
        promise: view.promise,
        sponsor: view.sponsor,
        baseline,
        experiment,
        ztest,
        checked_robots: phase.iter().any(|r| classes.is_robots(r.uri_path)),
        accesses: phase.len() as u64,
    }
}

/// Table 4: sessionized visits and distinct known bots per phase. The
/// per-phase session counts are independent, so they run on the worker
/// pool too.
fn phase_traffic(
    table: &LogTable,
    site_rows: &[&RecordRow],
    outcomes: &[BotOutcome],
    schedule: &PhaseSchedule,
    threads: usize,
) -> Vec<PhaseTraffic> {
    let visits = run_indexed(schedule.phases.len(), threads, |i| {
        let p = &schedule.phases[i];
        let phase_rows =
            site_rows.iter().filter(|r| r.timestamp >= p.start && r.timestamp < p.end).copied();
        table.count_sessions(phase_rows, SESSION_GAP_SECS)
    });
    schedule
        .phases
        .iter()
        .enumerate()
        .zip(visits)
        .map(|((i, p), visits)| PhaseTraffic {
            version: p.version,
            unique_site_visits: visits,
            unique_bot_visitors: outcomes.iter().filter(|o| o.phase_presence[i]).count(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_experiment() -> Experiment {
        // Small but dense enough for per-bot rows to form.
        let cfg = SimConfig { scale: 0.25, sites: 3, ..SimConfig::default() };
        Experiment::run(&cfg)
    }

    #[test]
    fn directive_plumbing() {
        assert_eq!(Directive::CrawlDelay.version(), PolicyVersion::V1CrawlDelay);
        assert_eq!(Directive::Endpoint.version(), PolicyVersion::V2EndpointOnly);
        assert_eq!(Directive::Disallow.version(), PolicyVersion::V3DisallowAll);
        assert_eq!(Directive::ALL.len(), 3);
    }

    #[test]
    fn end_to_end_rows_exist() {
        let exp = test_experiment();
        for d in Directive::ALL {
            assert!(
                exp.per_directive[&d].len() >= 10,
                "{d:?} produced only {} rows",
                exp.per_directive[&d].len()
            );
        }
    }

    #[test]
    fn exempt_bots_absent_from_rows() {
        let exp = test_experiment();
        for d in Directive::ALL {
            for row in &exp.per_directive[&d] {
                assert!(!is_exempt_agent(&row.bot), "{} must be excluded", row.bot);
            }
        }
    }

    #[test]
    fn obedient_bot_measures_high_disallow_compliance() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::Disallow];
        let gpt = rows.iter().find(|r| r.bot == "GPTBot");
        if let Some(gpt) = gpt {
            let c = gpt.compliance().unwrap();
            assert!(c > 0.8, "GPTBot planted disallow=1.0, measured {c}");
        }
        let chat = rows.iter().find(|r| r.bot == "ChatGPT-User");
        if let Some(chat) = chat {
            assert!(chat.compliance().unwrap() > 0.8);
        }
    }

    #[test]
    fn defiant_bot_measures_low_disallow_compliance() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::Disallow];
        if let Some(headless) = rows.iter().find(|r| r.bot == "HeadlessChrome") {
            let c = headless.compliance().unwrap();
            assert!(c < 0.3, "HeadlessChrome planted disallow=0.011, measured {c}");
        }
    }

    #[test]
    fn crawl_delay_recovers_planted_ordering() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::CrawlDelay];
        let get = |name: &str| {
            rows.iter().find(|r| r.bot == name).and_then(super::BotDirectiveResult::compliance)
        };
        if let (Some(chat), Some(headless)) = (get("ChatGPT-User"), get("HeadlessChrome")) {
            assert!(chat > headless + 0.3, "planted 0.91 vs 0.036; measured {chat} vs {headless}");
        }
    }

    #[test]
    fn category_table_shape() {
        let exp = test_experiment();
        let t = exp.category_table();
        assert!(!t.rows.is_empty());
        assert_eq!(t.directive_average.len(), 3);
        for (_, cells, avg) in &t.rows {
            for cell in cells.values() {
                assert!((0.0..=1.0 + 1e-9).contains(&cell.compliance));
                assert!(cell.weight > 0);
            }
            assert!((0.0..=1.0 + 1e-9).contains(avg));
        }
    }

    #[test]
    fn headline_result_strictness_ordering() {
        // The paper's RQ1: compliance decreases as directives tighten —
        // crawl delay beats both endpoint and disallow averages.
        let exp = test_experiment();
        let t = exp.category_table();
        let cd = t.directive_average[&Directive::CrawlDelay];
        let ep = t.directive_average[&Directive::Endpoint];
        let da = t.directive_average[&Directive::Disallow];
        assert!(cd > ep, "crawl delay {cd} should beat endpoint {ep}");
        assert!(cd > da, "crawl delay {cd} should beat disallow {da}");
    }

    #[test]
    fn phase_traffic_covers_four_versions() {
        let exp = test_experiment();
        assert_eq!(exp.phase_traffic.len(), 4);
        let versions: Vec<PolicyVersion> = exp.phase_traffic.iter().map(|p| p.version).collect();
        assert_eq!(versions, PolicyVersion::ALL.to_vec());
        for p in &exp.phase_traffic {
            assert!(p.unique_site_visits > 0, "{:?}", p.version);
            assert!(p.unique_bot_visitors > 10, "{:?}", p.version);
        }
    }

    #[test]
    fn spoof_volume_is_small_minority() {
        let exp = test_experiment();
        for (d, &(legit, spoofed)) in &exp.spoof_volume {
            assert!(legit > 0, "{d:?}");
            // Paper Table 9: spoofed ≪ legit.
            assert!(spoofed * 5 < legit, "{d:?}: {spoofed} spoofed vs {legit} legit");
        }
    }

    #[test]
    fn skipped_checks_contains_never_checkers() {
        let exp = test_experiment();
        let skipped = exp.skipped_checks();
        let names: Vec<&str> = skipped.iter().map(|(n, _)| n.as_str()).collect();
        // Axios and friends never check robots.txt (Table 7).
        assert!(
            names.iter().any(|n| [
                "Axios",
                "Iframely",
                "MicrosoftPreview",
                "Apache-HttpClient",
                "Slack-ImgProxy",
                "BrightEdge Crawler"
            ]
            .contains(n)),
            "expected a Table 7 never-checker among {names:?}"
        );
    }

    #[test]
    fn truth_is_attached_by_run() {
        let exp = test_experiment();
        let truth = exp.truth.as_ref().expect("run() attaches truth");
        assert!(truth.behaviors.contains_key("GPTBot"));
    }
}

//! Full-experiment analysis: the §4 pipeline end to end.
//!
//! Given the 8-week phase-study logs (generated or real), this module:
//!
//! 1. restricts to the experiment site,
//! 2. standardizes user agents to canonical bots,
//! 3. flags possible spoofing with the §5.2 ASN-dominance heuristic and
//!    sets the flagged minority-network requests aside,
//! 4. slices the four deployment phases,
//! 5. computes, per bot per directive, the §4.2 compliance counts under
//!    the experimental file and under the baseline file, with the pooled
//!    two-proportion z-test between them (Table 10, Figures 9/11),
//! 6. aggregates categories with access-weighted averages (Table 5),
//! 7. derives the traffic summary per version (Table 4) and the
//!    skipped-robots.txt rows (Table 7).

use std::collections::BTreeMap;

use botscope_stats::describe::WeightedMeanAccumulator;
use botscope_stats::ztest::{two_proportion_z_test, ZTestResult};
use botscope_useragent::{BotCategory, RobotsPromise};
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::SESSION_GAP_SECS;
use botscope_weblog::table::{LogTable, RecordRow};
use botscope_weblog::time::Timestamp;

use botscope_simnet::engine::GroundTruth;
use botscope_simnet::phases::{is_exempt_agent, PhaseSchedule, PolicyVersion};
use botscope_simnet::scenario::{phase_study_table, PhaseStudyTableOutput};
use botscope_simnet::SimConfig;

use crate::metrics::{
    crawl_delay_counts, crawl_delay_counts_rows, disallow_counts, disallow_counts_rows,
    endpoint_counts, endpoint_counts_rows, DirectiveCounts, PathClasses, CRAWL_DELAY_SECS,
};
use crate::pipeline::{standardize_rows, standardize_table, BotRowView, StandardizedTable};
use crate::spoofdetect::{detect_rows, split_rows, SpoofReport};

/// The three experimental directives (paper §4.1, v1–v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Directive {
    /// v1: 30-second crawl delay.
    CrawlDelay,
    /// v2: `/page-data/*` endpoint only.
    Endpoint,
    /// v3: disallow everything.
    Disallow,
}

impl Directive {
    /// All directives in deployment order.
    pub const ALL: [Directive; 3] =
        [Directive::CrawlDelay, Directive::Endpoint, Directive::Disallow];

    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            Directive::CrawlDelay => "Crawl delay",
            Directive::Endpoint => "Endpoint access",
            Directive::Disallow => "Disallow all",
        }
    }

    /// The robots.txt version that deploys this directive.
    pub fn version(self) -> PolicyVersion {
        match self {
            Directive::CrawlDelay => PolicyVersion::V1CrawlDelay,
            Directive::Endpoint => PolicyVersion::V2EndpointOnly,
            Directive::Disallow => PolicyVersion::V3DisallowAll,
        }
    }

    /// Compute this directive's compliance counts over a record set.
    pub fn counts(self, records: &[&AccessRecord]) -> DirectiveCounts {
        match self {
            Directive::CrawlDelay => crawl_delay_counts(records, CRAWL_DELAY_SECS),
            Directive::Endpoint => endpoint_counts(records),
            Directive::Disallow => disallow_counts(records),
        }
    }

    /// Row-native [`Directive::counts`].
    pub fn counts_rows(self, classes: &PathClasses, rows: &[&RecordRow]) -> DirectiveCounts {
        match self {
            Directive::CrawlDelay => crawl_delay_counts_rows(rows, CRAWL_DELAY_SECS),
            Directive::Endpoint => endpoint_counts_rows(classes, rows),
            Directive::Disallow => disallow_counts_rows(classes, rows),
        }
    }
}

/// One bot × directive analysis row.
#[derive(Debug, Clone)]
pub struct BotDirectiveResult {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// Public robots.txt promise.
    pub promise: RobotsPromise,
    /// Sponsoring entity.
    pub sponsor: &'static str,
    /// Counts under the baseline file.
    pub baseline: DirectiveCounts,
    /// Counts under the experimental file.
    pub experiment: DirectiveCounts,
    /// Pooled two-proportion z-test baseline→experiment (`None` = the
    /// paper's `N/A`).
    pub ztest: Option<ZTestResult>,
    /// Whether the bot fetched robots.txt during the experimental phase.
    pub checked_robots: bool,
    /// Record count during the experimental phase (the Table 5 weight).
    pub accesses: u64,
}

impl BotDirectiveResult {
    /// Experiment-phase compliance ratio, if defined.
    pub fn compliance(&self) -> Option<f64> {
        self.experiment.ratio()
    }

    /// Whether the baseline→experiment shift is significant at p ≤ 0.05.
    pub fn significant(&self) -> bool {
        self.ztest.as_ref().is_some_and(|t| t.significant_at(0.05))
    }
}

/// Table 4 row: traffic under one robots.txt version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTraffic {
    /// The deployed version.
    pub version: PolicyVersion,
    /// Sessionized site visits during the phase.
    pub unique_site_visits: usize,
    /// Distinct known bots observed.
    pub unique_bot_visitors: usize,
}

/// Table 5 cell: weighted compliance and its total weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryCell {
    /// Access-weighted mean compliance.
    pub compliance: f64,
    /// Total accesses behind the mean.
    pub weight: u64,
}

/// Table 5: category × directive.
#[derive(Debug, Clone, Default)]
pub struct CategoryTable {
    /// Rows in category order.
    pub rows: Vec<(BotCategory, BTreeMap<Directive, CategoryCell>, f64)>,
    /// The access-weighted all-bot average per directive (bottom row).
    pub directive_average: BTreeMap<Directive, f64>,
}

/// Everything the evaluation section needs.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Non-spoofed per-bot rows, per directive (Fig 9 / Tables 6, 10).
    pub per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>>,
    /// Spoof-flagged per-bot rows, per directive (Fig 11 / Appendix A.2).
    pub spoofed_per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>>,
    /// Table 4.
    pub phase_traffic: Vec<PhaseTraffic>,
    /// The §5.2 detection over the experiment-site logs (Table 8 inputs).
    pub spoof_report: SpoofReport,
    /// Legit vs spoofed request counts per directive phase (Table 9).
    pub spoof_volume: BTreeMap<Directive, (u64, u64)>,
    /// The generator's planted truth, when the logs came from simnet.
    pub truth: Option<GroundTruth>,
    /// The schedule analyzed.
    pub schedule: PhaseSchedule,
}

/// Minimum accesses per phase for a bot to enter the per-bot analysis
/// (paper §4.1: "filter out bots that accessed the site less than 5 times
/// under any robots.txt version").
pub const MIN_ACCESSES: usize = 5;

impl Experiment {
    /// Generate the phase study with `cfg` and analyze it.
    pub fn run(cfg: &SimConfig) -> Experiment {
        let PhaseStudyTableOutput { sim, schedule } = phase_study_table(cfg);
        let mut exp = Experiment::analyze_table(&sim.table, &schedule);
        exp.truth = Some(sim.truth);
        exp
    }

    /// Analyze an arbitrary record set against a schedule. Thin adapter
    /// over [`Experiment::analyze_table`]: the records are interned once
    /// and every downstream stage runs on symbol-keyed rows.
    pub fn analyze(records: &[AccessRecord], schedule: &PhaseSchedule) -> Experiment {
        Experiment::analyze_table(&LogTable::from_records(records), schedule)
    }

    /// Analyze an interned table against a schedule — the native path.
    pub fn analyze_table(table: &LogTable, schedule: &PhaseSchedule) -> Experiment {
        let site_name = format!("site-{:02}.example.edu", schedule.experiment_site);
        let classes = PathClasses::new(table);
        let site_rows: Vec<&RecordRow> = match table.interner().get(&site_name) {
            Some(site) => table.rows().iter().filter(|r| r.sitename == site).collect(),
            None => Vec::new(),
        };

        let logs = standardize_rows(table, site_rows.iter().copied());
        let spoof_report = detect_rows(table, &logs.per_bot_rows());

        // "Checked robots.txt" (Table 7) is judged estate-wide: a bot that
        // fetched any of the institution's robots.txt files during a phase
        // demonstrably consulted policy, even if the fetch landed on a
        // sister site.
        let all_logs = standardize_table(table);
        let robots_times: BTreeMap<String, Vec<u64>> = all_logs
            .bots
            .iter()
            .map(|(name, view)| {
                let times: Vec<u64> = view
                    .rows
                    .iter()
                    .filter(|r| classes.is_robots(r.uri_path))
                    .map(|r| r.timestamp.unix())
                    .collect();
                (name.clone(), times)
            })
            .collect();

        // Slice each bot's rows into phases, separating spoofed ones.
        let phase_of = |version: PolicyVersion| -> (Timestamp, Timestamp) {
            schedule.window_of(version).expect("version scheduled")
        };
        let in_window =
            |r: &&RecordRow, lo: Timestamp, hi: Timestamp| r.timestamp >= lo && r.timestamp < hi;

        let mut per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> = BTreeMap::new();
        let mut spoofed_per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> =
            BTreeMap::new();
        let mut spoof_volume: BTreeMap<Directive, (u64, u64)> = BTreeMap::new();
        let (base_lo, base_hi) = phase_of(PolicyVersion::Base);

        for directive in Directive::ALL {
            let (lo, hi) = phase_of(directive.version());
            let mut rows = Vec::new();
            let mut spoofed_rows = Vec::new();
            let mut volume = (0u64, 0u64);

            for view in logs.bots.values() {
                let (legit, spoofed) = match spoof_report.finding_for(&view.name) {
                    Some(f) => split_rows(f, table, &view.rows),
                    None => (view.rows.clone(), Vec::new()),
                };

                let legit_base: Vec<&RecordRow> =
                    legit.iter().filter(|r| in_window(r, base_lo, base_hi)).copied().collect();
                let legit_phase: Vec<&RecordRow> =
                    legit.iter().filter(|r| in_window(r, lo, hi)).copied().collect();
                volume.0 += legit_phase.len() as u64;

                // Exempt SEO bots are excluded from the *legitimate*
                // per-bot analysis (they keep full access under v2/v3;
                // the paper's Table 6 and Figure 9 omit them) — but their
                // spoofed impostors are analyzed like everyone else's
                // (the paper's Figure 11 shows Googlebot, bingbot and
                // Baiduspider spoof instances).
                let exempt = is_exempt_agent(&view.name);
                if !exempt && legit_base.len() >= MIN_ACCESSES && legit_phase.len() >= MIN_ACCESSES
                {
                    let checked = robots_times
                        .get(&view.name)
                        .is_some_and(|ts| ts.iter().any(|&t| t >= lo.unix() && t < hi.unix()));
                    let mut row = make_row(view, &classes, directive, &legit_base, &legit_phase);
                    row.checked_robots = checked || row.checked_robots;
                    rows.push(row);
                }

                if !spoofed.is_empty() {
                    let sp_base: Vec<&RecordRow> = spoofed
                        .iter()
                        .filter(|r| in_window(r, base_lo, base_hi))
                        .copied()
                        .collect();
                    let sp_phase: Vec<&RecordRow> =
                        spoofed.iter().filter(|r| in_window(r, lo, hi)).copied().collect();
                    volume.1 += sp_phase.len() as u64;
                    if !sp_base.is_empty() && !sp_phase.is_empty() {
                        spoofed_rows.push(make_row(view, &classes, directive, &sp_base, &sp_phase));
                    }
                }
            }
            rows.sort_by(|a, b| a.bot.cmp(&b.bot));
            spoofed_rows.sort_by(|a, b| a.bot.cmp(&b.bot));
            per_directive.insert(directive, rows);
            spoofed_per_directive.insert(directive, spoofed_rows);
            spoof_volume.insert(directive, volume);
        }

        let phase_traffic = phase_traffic(table, &site_rows, &logs, schedule);

        Experiment {
            per_directive,
            spoofed_per_directive,
            phase_traffic,
            spoof_report,
            spoof_volume,
            truth: None,
            schedule: schedule.clone(),
        }
    }

    /// Table 5: access-weighted category compliance. Categories with no
    /// dedicated row in the paper's table (archivers, developer helpers,
    /// scrapers, AI agents, uncategorized) fold into "Other", matching the
    /// paper's presentation.
    pub fn category_table(&self) -> CategoryTable {
        let mut categories: Vec<BotCategory> = Vec::new();
        for rows in self.per_directive.values() {
            for r in rows {
                let cat = table5_category(r.category);
                if !categories.contains(&cat) {
                    categories.push(cat);
                }
            }
        }
        categories.sort();

        let mut table = CategoryTable::default();
        for cat in categories {
            let mut cells: BTreeMap<Directive, CategoryCell> = BTreeMap::new();
            let mut row_avg = Vec::new();
            for directive in Directive::ALL {
                let mut acc = WeightedMeanAccumulator::new();
                let mut weight = 0u64;
                for r in &self.per_directive[&directive] {
                    if table5_category(r.category) == cat {
                        if let Some(c) = r.compliance() {
                            acc.add(c, r.accesses as f64);
                            weight += r.accesses;
                        }
                    }
                }
                if let Some(m) = acc.finish() {
                    cells.insert(directive, CategoryCell { compliance: m, weight });
                    row_avg.push(m);
                }
            }
            if cells.is_empty() {
                continue;
            }
            let avg = row_avg.iter().sum::<f64>() / row_avg.len() as f64;
            table.rows.push((cat, cells, avg));
        }

        for directive in Directive::ALL {
            let mut acc = WeightedMeanAccumulator::new();
            for r in &self.per_directive[&directive] {
                if let Some(c) = r.compliance() {
                    acc.add(c, r.accesses as f64);
                }
            }
            if let Some(m) = acc.finish() {
                table.directive_average.insert(directive, m);
            }
        }
        table
    }

    /// Bots that skipped the robots.txt check during at least one
    /// experimental phase (Table 7): (bot, per-directive (checked,
    /// compliance)).
    pub fn skipped_checks(&self) -> Vec<(String, SkippedChecks)> {
        let mut per_bot: BTreeMap<String, SkippedChecks> = BTreeMap::new();
        for (&directive, rows) in &self.per_directive {
            for r in rows {
                per_bot
                    .entry(r.bot.clone())
                    .or_default()
                    .insert(directive, (r.checked_robots, r.compliance()));
            }
        }
        per_bot
            .into_iter()
            .filter(|(_, dirs)| dirs.values().any(|&(checked, _)| !checked))
            .collect()
    }
}

/// Per-directive (checked robots.txt?, compliance) map of one bot —
/// the Table 7 row payload.
pub type SkippedChecks = BTreeMap<Directive, (bool, Option<f64>)>;

/// The display category a bot takes in Table 5: the paper's nine rows,
/// with everything else under "Other".
pub fn table5_category(cat: BotCategory) -> BotCategory {
    match cat {
        BotCategory::AiAssistant
        | BotCategory::AiDataScraper
        | BotCategory::AiSearchCrawler
        | BotCategory::Fetcher
        | BotCategory::HeadlessBrowser
        | BotCategory::IntelligenceGatherer
        | BotCategory::SeoCrawler
        | BotCategory::SearchEngineCrawler => cat,
        _ => BotCategory::Other,
    }
}

fn make_row(
    view: &BotRowView<'_>,
    classes: &PathClasses,
    directive: Directive,
    base: &[&RecordRow],
    phase: &[&RecordRow],
) -> BotDirectiveResult {
    let baseline = directive.counts_rows(classes, base);
    let experiment = directive.counts_rows(classes, phase);
    let ztest = two_proportion_z_test(
        experiment.successes,
        experiment.trials,
        baseline.successes,
        baseline.trials,
    );
    BotDirectiveResult {
        bot: view.name.clone(),
        category: view.category,
        promise: view.promise,
        sponsor: view.sponsor,
        baseline,
        experiment,
        ztest,
        checked_robots: phase.iter().any(|r| classes.is_robots(r.uri_path)),
        accesses: phase.len() as u64,
    }
}

/// Table 4: sessionized visits and distinct known bots per phase.
fn phase_traffic(
    table: &LogTable,
    site_rows: &[&RecordRow],
    logs: &StandardizedTable<'_>,
    schedule: &PhaseSchedule,
) -> Vec<PhaseTraffic> {
    schedule
        .phases
        .iter()
        .map(|p| {
            let phase_rows =
                site_rows.iter().filter(|r| r.timestamp >= p.start && r.timestamp < p.end).copied();
            let visits = table.count_sessions(phase_rows, SESSION_GAP_SECS);
            let bots = logs
                .bots
                .values()
                .filter(|v| v.rows.iter().any(|r| r.timestamp >= p.start && r.timestamp < p.end))
                .count();
            PhaseTraffic {
                version: p.version,
                unique_site_visits: visits,
                unique_bot_visitors: bots,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_experiment() -> Experiment {
        // Small but dense enough for per-bot rows to form.
        let cfg = SimConfig { scale: 0.25, sites: 3, ..SimConfig::default() };
        Experiment::run(&cfg)
    }

    #[test]
    fn directive_plumbing() {
        assert_eq!(Directive::CrawlDelay.version(), PolicyVersion::V1CrawlDelay);
        assert_eq!(Directive::Endpoint.version(), PolicyVersion::V2EndpointOnly);
        assert_eq!(Directive::Disallow.version(), PolicyVersion::V3DisallowAll);
        assert_eq!(Directive::ALL.len(), 3);
    }

    #[test]
    fn end_to_end_rows_exist() {
        let exp = test_experiment();
        for d in Directive::ALL {
            assert!(
                exp.per_directive[&d].len() >= 10,
                "{d:?} produced only {} rows",
                exp.per_directive[&d].len()
            );
        }
    }

    #[test]
    fn exempt_bots_absent_from_rows() {
        let exp = test_experiment();
        for d in Directive::ALL {
            for row in &exp.per_directive[&d] {
                assert!(!is_exempt_agent(&row.bot), "{} must be excluded", row.bot);
            }
        }
    }

    #[test]
    fn obedient_bot_measures_high_disallow_compliance() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::Disallow];
        let gpt = rows.iter().find(|r| r.bot == "GPTBot");
        if let Some(gpt) = gpt {
            let c = gpt.compliance().unwrap();
            assert!(c > 0.8, "GPTBot planted disallow=1.0, measured {c}");
        }
        let chat = rows.iter().find(|r| r.bot == "ChatGPT-User");
        if let Some(chat) = chat {
            assert!(chat.compliance().unwrap() > 0.8);
        }
    }

    #[test]
    fn defiant_bot_measures_low_disallow_compliance() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::Disallow];
        if let Some(headless) = rows.iter().find(|r| r.bot == "HeadlessChrome") {
            let c = headless.compliance().unwrap();
            assert!(c < 0.3, "HeadlessChrome planted disallow=0.011, measured {c}");
        }
    }

    #[test]
    fn crawl_delay_recovers_planted_ordering() {
        let exp = test_experiment();
        let rows = &exp.per_directive[&Directive::CrawlDelay];
        let get = |name: &str| rows.iter().find(|r| r.bot == name).and_then(|r| r.compliance());
        if let (Some(chat), Some(headless)) = (get("ChatGPT-User"), get("HeadlessChrome")) {
            assert!(chat > headless + 0.3, "planted 0.91 vs 0.036; measured {chat} vs {headless}");
        }
    }

    #[test]
    fn category_table_shape() {
        let exp = test_experiment();
        let t = exp.category_table();
        assert!(!t.rows.is_empty());
        assert_eq!(t.directive_average.len(), 3);
        for (_, cells, avg) in &t.rows {
            for cell in cells.values() {
                assert!((0.0..=1.0 + 1e-9).contains(&cell.compliance));
                assert!(cell.weight > 0);
            }
            assert!((0.0..=1.0 + 1e-9).contains(avg));
        }
    }

    #[test]
    fn headline_result_strictness_ordering() {
        // The paper's RQ1: compliance decreases as directives tighten —
        // crawl delay beats both endpoint and disallow averages.
        let exp = test_experiment();
        let t = exp.category_table();
        let cd = t.directive_average[&Directive::CrawlDelay];
        let ep = t.directive_average[&Directive::Endpoint];
        let da = t.directive_average[&Directive::Disallow];
        assert!(cd > ep, "crawl delay {cd} should beat endpoint {ep}");
        assert!(cd > da, "crawl delay {cd} should beat disallow {da}");
    }

    #[test]
    fn phase_traffic_covers_four_versions() {
        let exp = test_experiment();
        assert_eq!(exp.phase_traffic.len(), 4);
        let versions: Vec<PolicyVersion> = exp.phase_traffic.iter().map(|p| p.version).collect();
        assert_eq!(versions, PolicyVersion::ALL.to_vec());
        for p in &exp.phase_traffic {
            assert!(p.unique_site_visits > 0, "{:?}", p.version);
            assert!(p.unique_bot_visitors > 10, "{:?}", p.version);
        }
    }

    #[test]
    fn spoof_volume_is_small_minority() {
        let exp = test_experiment();
        for (d, &(legit, spoofed)) in &exp.spoof_volume {
            assert!(legit > 0, "{d:?}");
            // Paper Table 9: spoofed ≪ legit.
            assert!(spoofed * 5 < legit, "{d:?}: {spoofed} spoofed vs {legit} legit");
        }
    }

    #[test]
    fn skipped_checks_contains_never_checkers() {
        let exp = test_experiment();
        let skipped = exp.skipped_checks();
        let names: Vec<&str> = skipped.iter().map(|(n, _)| n.as_str()).collect();
        // Axios and friends never check robots.txt (Table 7).
        assert!(
            names.iter().any(|n| [
                "Axios",
                "Iframely",
                "MicrosoftPreview",
                "Apache-HttpClient",
                "Slack-ImgProxy",
                "BrightEdge Crawler"
            ]
            .contains(n)),
            "expected a Table 7 never-checker among {names:?}"
        );
    }

    #[test]
    fn truth_is_attached_by_run() {
        let exp = test_experiment();
        let truth = exp.truth.as_ref().expect("run() attaches truth");
        assert!(truth.behaviors.contains_key("GPTBot"));
    }
}

//! Preprocessing glue: raw logs → per-bot views.
//!
//! Reproduces the study's §3.1 enrichment: standardize every user agent
//! against the known-bot corpus, attach the Dark-Visitors category, and
//! split the dataset into known-bot traffic and the anonymous remainder.

use std::collections::BTreeMap;

use botscope_useragent::{BotCategory, Standardizer};
use botscope_weblog::intern::Sym;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::{LogTable, RecordRow};

/// A known bot's slice of the dataset.
#[derive(Debug, Clone)]
pub struct BotView<'a> {
    /// Canonical name (registry spelling).
    pub name: String,
    /// Category.
    pub category: BotCategory,
    /// Whether the operator publicly promises to respect robots.txt.
    pub promise: botscope_useragent::RobotsPromise,
    /// Sponsoring entity.
    pub sponsor: &'static str,
    /// The bot's records, in input order.
    pub records: Vec<&'a AccessRecord>,
}

/// The standardized dataset: known bots by name, plus everything that did
/// not match the corpus.
#[derive(Debug, Clone, Default)]
pub struct StandardizedLogs<'a> {
    /// Known-bot views, keyed by canonical name (deterministic order).
    pub bots: BTreeMap<String, BotView<'a>>,
    /// Records from agents that matched no known bot.
    pub anonymous: Vec<&'a AccessRecord>,
}

impl<'a> StandardizedLogs<'a> {
    /// Total records attributed to known bots.
    pub fn known_bot_records(&self) -> usize {
        self.bots.values().map(|v| v.records.len()).sum()
    }

    /// Per-bot record slices as the spoof detector expects them.
    pub fn per_bot_records(&self) -> BTreeMap<String, Vec<&'a AccessRecord>> {
        self.bots.iter().map(|(k, v)| (k.clone(), v.records.clone())).collect()
    }

    /// Bots in a category.
    pub fn in_category(&self, category: BotCategory) -> Vec<&BotView<'a>> {
        self.bots.values().filter(|v| v.category == category).collect()
    }
}

/// Standardize a record set. Each distinct raw UA string is standardized
/// once and the result cached, so cost is O(records + distinct_agents ×
/// corpus).
pub fn standardize<'a>(records: &'a [AccessRecord]) -> StandardizedLogs<'a> {
    let standardizer = Standardizer::new();
    let mut cache: BTreeMap<&str, Option<&'static botscope_useragent::BotSpec>> = BTreeMap::new();
    let mut out = StandardizedLogs::default();

    for r in records {
        let spec = *cache
            .entry(r.useragent.as_str())
            .or_insert_with(|| standardizer.standardize(&r.useragent).map(|s| s.bot));
        match spec {
            Some(bot) => {
                out.bots
                    .entry(bot.canonical.to_string())
                    .or_insert_with(|| BotView {
                        name: bot.canonical.to_string(),
                        category: bot.category,
                        promise: bot.respects_robots,
                        sponsor: bot.sponsor,
                        records: Vec::new(),
                    })
                    .records
                    .push(r);
            }
            None => out.anonymous.push(r),
        }
    }
    out
}

/// Drop bots with fewer than `min` records (the paper filters bots "that
/// accessed the site less than 5 times under any robots.txt version").
pub fn filter_min_records<'a>(logs: &mut StandardizedLogs<'a>, min: usize) {
    logs.bots.retain(|_, v| v.records.len() >= min);
}

// ---------------------------------------------------------------------
// Row-native standardization (the interned hot path).
// ---------------------------------------------------------------------

/// A known bot's slice of a [`LogTable`].
#[derive(Debug, Clone)]
pub struct BotRowView<'t> {
    /// Canonical name (registry spelling).
    pub name: String,
    /// Category.
    pub category: BotCategory,
    /// Whether the operator publicly promises to respect robots.txt.
    pub promise: botscope_useragent::RobotsPromise,
    /// Sponsoring entity.
    pub sponsor: &'static str,
    /// The bot's rows, in input order.
    pub rows: Vec<&'t RecordRow>,
}

/// The standardized table: known bots by name, plus everything that did
/// not match the corpus.
#[derive(Debug, Clone)]
pub struct StandardizedTable<'t> {
    /// The table the row views borrow from.
    pub table: &'t LogTable,
    /// Known-bot views, keyed by canonical name (deterministic order).
    pub bots: BTreeMap<String, BotRowView<'t>>,
    /// Rows from agents that matched no known bot.
    pub anonymous: Vec<&'t RecordRow>,
}

impl<'t> StandardizedTable<'t> {
    /// Total rows attributed to known bots.
    pub fn known_bot_records(&self) -> usize {
        self.bots.values().map(|v| v.rows.len()).sum()
    }

    /// Per-bot row slices as the spoof detector expects them.
    pub fn per_bot_rows(&self) -> BTreeMap<String, Vec<&'t RecordRow>> {
        self.bots.iter().map(|(k, v)| (k.clone(), v.rows.clone())).collect()
    }

    /// Bots in a category.
    pub fn in_category(&self, category: BotCategory) -> Vec<&BotRowView<'t>> {
        self.bots.values().filter(|v| v.category == category).collect()
    }
}

/// Standardize a whole table. See [`standardize_rows`].
pub fn standardize_table(table: &LogTable) -> StandardizedTable<'_> {
    standardize_table_with_threads(table, 1)
}

/// [`standardize_table`] with the table's distinct user agents
/// standardized across `threads` scoped workers.
///
/// Standardizing one agent string is a pure function of the registry, so
/// sharding the distinct-agent set is free of ordering effects: the
/// output is identical at any worker count. Grouping rows into per-bot
/// views stays serial — after the per-agent results are in, it is one
/// array index per row.
pub fn standardize_table_with_threads(table: &LogTable, threads: usize) -> StandardizedTable<'_> {
    assert!(threads >= 1, "at least one worker required");
    // Distinct user-agent symbols, in first-appearance order.
    let mut seen = vec![false; table.interner().len()];
    let mut distinct: Vec<Sym> = Vec::new();
    for row in table.rows() {
        if !seen[row.useragent.index()] {
            seen[row.useragent.index()] = true;
            distinct.push(row.useragent);
        }
    }

    // spec_of[sym.index()]: the standardization verdict for every
    // distinct agent symbol (None = anonymous). Verdicts come from
    // `standardize_batch` (one fuzzy pass per distinct token, not per
    // agent), sharded over the worker pool in contiguous chunks; worker
    // threads only pay off when there are enough distinct agents to
    // amortize spawning.
    let standardizer = Standardizer::new();
    let headers: Vec<&str> = distinct.iter().map(|&sym| table.resolve(sym)).collect();
    let chunks = if headers.len() < 64 { 1 } else { threads };
    let chunk_size = headers.len().div_ceil(chunks.max(1)).max(1);
    let verdicts: Vec<Vec<Option<&'static botscope_useragent::BotSpec>>> =
        run_indexed(chunks, threads, |c| {
            let lo = (c * chunk_size).min(headers.len());
            let hi = ((c + 1) * chunk_size).min(headers.len());
            standardizer.standardize_batch(&headers[lo..hi])
        });
    let mut spec_of: Vec<Option<&'static botscope_useragent::BotSpec>> =
        vec![None; table.interner().len()];
    for (&sym, &spec) in distinct.iter().zip(verdicts.iter().flatten()) {
        spec_of[sym.index()] = spec;
    }

    // Map each agent symbol to its view slot, then group rows with one
    // array index per row.
    let mut slot_of = vec![u32::MAX; table.interner().len()];
    let mut views: Vec<BotRowView<'_>> = Vec::new();
    let mut slot_by_name: BTreeMap<&'static str, u32> = BTreeMap::new();
    for &sym in &distinct {
        if let Some(bot) = spec_of[sym.index()] {
            let slot = *slot_by_name.entry(bot.canonical).or_insert_with(|| {
                views.push(view_for(bot));
                (views.len() - 1) as u32
            });
            slot_of[sym.index()] = slot;
        }
    }
    let mut anonymous: Vec<&RecordRow> = Vec::new();
    for row in table.rows() {
        match slot_of[row.useragent.index()] {
            u32::MAX => anonymous.push(row),
            slot => views[slot as usize].rows.push(row),
        }
    }
    let bots: BTreeMap<String, BotRowView<'_>> =
        views.into_iter().map(|v| (v.name.clone(), v)).collect();
    StandardizedTable { table, bots, anonymous }
}

/// Standardize a row subset of a table. Each distinct user-agent
/// *symbol* is standardized once and cached in a dense array, so the
/// per-row cost is one integer index — the interned equivalent of
/// [`standardize`]'s string-keyed cache.
pub fn standardize_rows<'t>(
    table: &'t LogTable,
    rows: impl IntoIterator<Item = &'t RecordRow>,
) -> StandardizedTable<'t> {
    let standardizer = Standardizer::new();
    // cache[sym.index()]: None = unseen, Some(u32::MAX) = anonymous,
    // Some(slot) = index into `views`.
    let mut cache: Vec<Option<u32>> = vec![None; table.interner().len()];
    let mut views: Vec<BotRowView<'t>> = Vec::new();
    let mut slot_by_name: BTreeMap<&'static str, u32> = BTreeMap::new();
    let mut anonymous: Vec<&'t RecordRow> = Vec::new();

    for row in rows {
        let idx = row.useragent.index();
        let slot = *cache[idx].get_or_insert_with(|| {
            match standardizer.standardize(table.resolve(row.useragent)).map(|s| s.bot) {
                Some(bot) => *slot_by_name.entry(bot.canonical).or_insert_with(|| {
                    views.push(view_for(bot));
                    (views.len() - 1) as u32
                }),
                None => u32::MAX,
            }
        });
        match slot {
            u32::MAX => anonymous.push(row),
            slot => views[slot as usize].rows.push(row),
        }
    }
    let bots: BTreeMap<String, BotRowView<'t>> =
        views.into_iter().map(|v| (v.name.clone(), v)).collect();
    StandardizedTable { table, bots, anonymous }
}

/// Run `f(0..n)` across `threads` scoped workers and return the results
/// in index order — the workspace's shared fan-out shape (simnet
/// generation units, distinct-agent standardization, per-bot analysis).
/// `f` must be a pure function of its index for the output to be
/// worker-count invariant; the pool only changes execution order.
/// Serial (no spawns) when `threads` is 1 or there is at most one item.
pub(crate) fn run_indexed<T: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    assert!(threads >= 1, "at least one worker required");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Hand out work in chunks: per-index locking would swamp sub-µs
    // items (distinct-agent standardization) with contention, while
    // large fixed chunks would load-balance badly over very uneven items
    // (per-bot row counts are heavy-tailed). n/(threads·8) strikes the
    // balance; the clamp keeps chunks sane at both extremes.
    let chunk = (n / (threads * 8)).clamp(1, 1024);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let out: Vec<T> = (start..end).map(&f).collect();
                results.lock().expect("no poisoned workers").push((start, out));
            });
        }
    });
    let mut v = results.into_inner().expect("workers joined");
    v.sort_by_key(|&(start, _)| start);
    v.into_iter().flat_map(|(_, chunk)| chunk).collect()
}

/// An empty [`BotRowView`] carrying a spec's metadata.
fn view_for(bot: &'static botscope_useragent::BotSpec) -> BotRowView<'static> {
    BotRowView {
        name: bot.canonical.to_string(),
        category: bot.category,
        promise: bot.respects_robots,
        sponsor: bot.sponsor,
        rows: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_weblog::time::Timestamp;

    fn rec(ua: &str, t: u64) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: "/".into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    #[test]
    fn known_bots_are_grouped() {
        let records = vec![
            rec("Mozilla/5.0 (compatible; GPTBot/1.1)", 0),
            rec("Mozilla/5.0 (compatible; GPTBot/1.2)", 1), // version variant
            rec("Mozilla/5.0 (compatible; bingbot/2.0)", 2),
            rec("Mozilla/5.0 (Windows NT 10.0) Chrome/120 Safari/537", 3),
        ];
        let logs = standardize(&records);
        assert_eq!(logs.bots["GPTBot"].records.len(), 2, "UA variants merge");
        assert_eq!(logs.bots["bingbot"].records.len(), 1);
        assert_eq!(logs.anonymous.len(), 1);
        assert_eq!(logs.known_bot_records(), 3);
    }

    #[test]
    fn metadata_attached() {
        let records = vec![rec("Bytespider; spider-feedback@bytedance.com", 0)];
        let logs = standardize(&records);
        let v = &logs.bots["Bytespider"];
        assert_eq!(v.category, BotCategory::AiDataScraper);
        assert_eq!(v.sponsor, "ByteDance");
        assert_eq!(v.promise, botscope_useragent::RobotsPromise::No);
    }

    #[test]
    fn min_filter() {
        let mut records = vec![rec("Mozilla/5.0 (compatible; GPTBot/1.1)", 0)];
        for t in 0..5 {
            records.push(rec("Mozilla/5.0 (compatible; bingbot/2.0)", t));
        }
        let mut logs = standardize(&records);
        filter_min_records(&mut logs, 5);
        assert!(!logs.bots.contains_key("GPTBot"));
        assert!(logs.bots.contains_key("bingbot"));
    }

    #[test]
    fn category_query() {
        let records = vec![
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 0),
            rec("Mozilla/5.0 (compatible; AhrefsBot/7.0)", 1),
        ];
        let logs = standardize(&records);
        assert_eq!(logs.in_category(BotCategory::SeoCrawler).len(), 2);
        assert!(logs.in_category(BotCategory::Archiver).is_empty());
    }

    #[test]
    fn empty_input() {
        let logs = standardize(&[]);
        assert!(logs.bots.is_empty());
        assert!(logs.anonymous.is_empty());
    }

    #[test]
    fn table_standardization_matches_record_path() {
        let records = vec![
            rec("Mozilla/5.0 (compatible; GPTBot/1.1)", 0),
            rec("Mozilla/5.0 (compatible; GPTBot/1.2)", 1),
            rec("Mozilla/5.0 (compatible; bingbot/2.0)", 2),
            rec("Mozilla/5.0 (Windows NT 10.0) Chrome/120 Safari/537", 3),
        ];
        let table = LogTable::from_records(&records);
        let by_rows = standardize_table(&table);
        let by_records = standardize(&records);
        assert_eq!(by_rows.bots.len(), by_records.bots.len());
        assert_eq!(by_rows.known_bot_records(), by_records.known_bot_records());
        assert_eq!(by_rows.anonymous.len(), by_records.anonymous.len());
        for (name, view) in &by_rows.bots {
            let rec_view = &by_records.bots[name];
            assert_eq!(view.category, rec_view.category);
            assert_eq!(view.sponsor, rec_view.sponsor);
            let materialized: Vec<AccessRecord> =
                view.rows.iter().map(|r| table.materialize(r)).collect();
            let expected: Vec<AccessRecord> = rec_view.records.iter().map(|&r| r.clone()).collect();
            assert_eq!(materialized, expected);
        }
        assert_eq!(by_rows.in_category(BotCategory::AiDataScraper).len(), 1);
    }
}

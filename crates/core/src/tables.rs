//! Plain-text table and series rendering for the report binaries.

/// A fixed-column text table with automatic width alignment.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(std::string::ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns, a title line and a separator.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                let pad = widths[i].saturating_sub(cell.chars().count());
                if i + 1 < ncols {
                    line.extend(std::iter::repeat_n(' ', pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `places` decimal places.
pub fn f(v: f64, places: usize) -> String {
    format!("{v:.places$}")
}

/// Format an optional ratio, printing `N/A` for `None`.
pub fn ratio(v: Option<f64>) -> String {
    match v {
        Some(v) => f(v, 3),
        None => "N/A".to_string(),
    }
}

/// Format a presence cell (`Yes`/`No`), with `-` for "not applicable" —
/// the Table 7 "checked robots.txt while vN was live" vocabulary.
pub fn yes_no(v: Option<bool>) -> String {
    match v {
        Some(true) => "Yes".to_string(),
        Some(false) => "No".to_string(),
        None => "-".to_string(),
    }
}

/// Render a named (x, y) series as `label: x y` lines — the figure
/// binaries emit these so the series can be diffed and plotted.
pub fn series(title: &str, points: &[(String, f64)]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let width = points.iter().map(|(x, _)| x.chars().count()).max().unwrap_or(0);
    for (x, y) in points {
        let pad = width.saturating_sub(x.chars().count());
        out.push_str(x);
        out.extend(std::iter::repeat_n(' ', pad));
        out.push_str(&format!("  {y:.4}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = TextTable::new("T", &["name", "n"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[1].starts_with("name"));
        // Both data rows have the number column starting at the same
        // offset.
        let off_a = lines[3].find('1').unwrap();
        let off_b = lines[4].find("22").unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_enforced() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(0.6094, 3), "0.609");
        assert_eq!(ratio(Some(0.5)), "0.500");
        assert_eq!(ratio(None), "N/A");
        assert_eq!(yes_no(Some(true)), "Yes");
        assert_eq!(yes_no(Some(false)), "No");
        assert_eq!(yes_no(None), "-");
    }

    #[test]
    fn series_rendering() {
        let s = series("S", &[("2025-02-12".into(), 0.25), ("2025-02-13".into(), 1.0)]);
        assert!(s.contains("2025-02-12  0.2500"));
        assert!(s.contains("2025-02-13  1.0000"));
    }

    #[test]
    fn empty_table() {
        let t = TextTable::new("T", &["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.render().contains("a"));
    }
}

//! Rendering every table and figure of the paper's evaluation.
//!
//! Two entry points:
//!
//! * [`FullStudyReport`] — computed over the 46-day passive dataset
//!   (paper §3, §5): Tables 2/3/8, Figures 2/3/4/10;
//! * the [`Experiment`](crate::analyze::Experiment) renderers — Tables
//!   4/5/6/7/9/10 and Figures 9/11.
//!
//! Renderers return plain text; the bench binaries print them, and
//! EXPERIMENTS.md captures them next to the paper's numbers.

use std::collections::BTreeMap;

use botscope_stats::ecdf::TimeSeriesCdf;
use botscope_useragent::BotCategory;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::session::{Session, SESSION_GAP_SECS};
use botscope_weblog::summary::DatasetSummary;
use botscope_weblog::table::{LogTable, RecordRow};
use botscope_weblog::time::Timestamp;

use crate::analyze::{Directive, Experiment};
use crate::metrics::PathClasses;
use crate::pipeline::standardize_table;
use crate::recheck::{by_category, profiles_table_with, RecheckByCategory};
use crate::spoofdetect::{detect_rows, SpoofReport};
use crate::tables::{f, ratio, series, TextTable};

/// Per-bot aggregate used by Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct BotStat {
    /// Canonical name.
    pub name: String,
    /// Category.
    pub category: BotCategory,
    /// Total page hits.
    pub hits: u64,
    /// Total bytes scraped.
    pub bytes: u64,
}

/// All aggregates of the passive 46-day study.
#[derive(Debug, Clone)]
pub struct FullStudyReport {
    /// Table 2 top row.
    pub all: DatasetSummary,
    /// Table 2 bottom row (known bots only).
    pub known: DatasetSummary,
    /// Per-bot stats, descending by hits.
    pub bot_stats: Vec<BotStat>,
    /// Sessions per category (Figure 2).
    pub category_sessions: BTreeMap<BotCategory, u64>,
    /// Sessions per (category, day index) (Figure 4).
    pub category_daily_sessions: BTreeMap<(BotCategory, u64), u64>,
    /// Byte-weighted time series per category (Figure 3).
    pub category_bytes_cdf: BTreeMap<BotCategory, TimeSeriesCdf>,
    /// Figure 10 aggregation.
    pub recheck: RecheckByCategory,
    /// Table 8 detection.
    pub spoof: SpoofReport,
    /// Dataset start.
    pub start: Timestamp,
    /// Dataset length in days.
    pub days: u64,
}

impl FullStudyReport {
    /// Compute all aggregates from a record set (thin adapter over
    /// [`FullStudyReport::from_table`]).
    pub fn new(records: &[AccessRecord]) -> FullStudyReport {
        FullStudyReport::from_table(&LogTable::from_records(records))
    }

    /// Compute all aggregates from an interned table — the native path.
    pub fn from_table(table: &LogTable) -> FullStudyReport {
        let logs = standardize_table(table);
        let all = DatasetSummary::compute_table(table);

        let known_rows: Vec<&RecordRow> =
            logs.bots.values().flat_map(|v| v.rows.iter().copied()).collect();
        let known =
            DatasetSummary::compute_rows_with_gap(known_rows.iter().copied(), SESSION_GAP_SECS);

        let mut bot_stats: Vec<BotStat> = logs
            .bots
            .values()
            .map(|v| BotStat {
                name: v.name.clone(),
                category: v.category,
                hits: v.rows.len() as u64,
                bytes: v.rows.iter().map(|r| r.bytes).sum(),
            })
            .collect();
        bot_stats.sort_by(|a, b| b.hits.cmp(&a.hits).then(a.name.cmp(&b.name)));

        let start = table.rows().iter().map(|r| r.timestamp).min().unwrap_or_default().day_start();
        let end = table.rows().iter().map(|r| r.timestamp).max().unwrap_or_default();
        let days = end.days_since(start) + 1;

        // Category of a session = category of its (standardized) agent.
        let mut ua_category: BTreeMap<&str, BotCategory> = BTreeMap::new();
        for v in logs.bots.values() {
            for r in &v.rows {
                ua_category.insert(table.resolve(r.useragent), v.category);
            }
        }
        let sessions: Vec<Session> =
            table.sessionize_rows(known_rows.iter().copied(), SESSION_GAP_SECS);
        let mut category_sessions: BTreeMap<BotCategory, u64> = BTreeMap::new();
        let mut category_daily_sessions: BTreeMap<(BotCategory, u64), u64> = BTreeMap::new();
        let mut category_bytes_cdf: BTreeMap<BotCategory, TimeSeriesCdf> = BTreeMap::new();
        for s in &sessions {
            let Some(&cat) = ua_category.get(s.useragent.as_str()) else { continue };
            *category_sessions.entry(cat).or_default() += 1;
            let day = s.start.days_since(start);
            *category_daily_sessions.entry((cat, day)).or_default() += 1;
            category_bytes_cdf.entry(cat).or_default().add(s.start.unix(), s.bytes as f64);
        }

        let horizon_end = end.unix() + 1;
        let classes = PathClasses::new(table);
        let recheck = by_category(&profiles_table_with(&classes, &logs, horizon_end));
        let spoof = detect_rows(table, &logs.per_bot_rows());

        FullStudyReport {
            all,
            known,
            bot_stats,
            category_sessions,
            category_daily_sessions,
            category_bytes_cdf,
            recheck,
            spoof,
            start,
            days,
        }
    }

    /// Table 2: dataset overview.
    pub fn table2(&self) -> String {
        let mut t = TextTable::new(
            "Table 2. Dataset overview (all data vs known bots)",
            &[
                "Data subset",
                "Unique IPs",
                "Unique UAs",
                "Avg bytes/session",
                "Unique ASNs",
                "Total bytes",
                "Total page visits",
                "Unique page visits",
            ],
        );
        for (label, s) in [("All data", &self.all), ("Known bots", &self.known)] {
            t.row(vec![
                label.to_string(),
                s.unique_ips.to_string(),
                s.unique_user_agents.to_string(),
                f(s.avg_bytes_per_session, 0),
                s.unique_asns.to_string(),
                s.total_bytes.to_string(),
                s.total_page_visits.to_string(),
                s.unique_page_visits.to_string(),
            ]);
        }
        t.render()
    }

    /// Table 3: the 20 most active bots.
    pub fn table3(&self) -> String {
        let total_hits: u64 = self.all.raw_records as u64;
        let mut t = TextTable::new(
            "Table 3. Most active bots (top 20 by hits)",
            &["Bot name", "Total hits", "% of all traffic", "GB scraped"],
        );
        for b in self.bot_stats.iter().take(20) {
            t.row(vec![
                b.name.clone(),
                b.hits.to_string(),
                f(100.0 * b.hits as f64 / total_hits.max(1) as f64, 2),
                f(b.bytes as f64 / 1e9, 3),
            ]);
        }
        t.render()
    }

    /// Figure 2: sessions per bot category (descending).
    pub fn figure2(&self) -> String {
        let mut rows: Vec<(String, f64)> = self
            .category_sessions
            .iter()
            .map(|(cat, &n)| (cat.name().to_string(), n as f64))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        series("Figure 2. Scraper sessions per bot category", &rows)
    }

    /// The top `n` categories by total value of `map`.
    fn top_categories<T: Copy + Into<f64>>(
        map: &BTreeMap<BotCategory, T>,
        n: usize,
    ) -> Vec<BotCategory> {
        let mut cats: Vec<(BotCategory, f64)> = map.iter().map(|(&c, &v)| (c, v.into())).collect();
        cats.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        cats.into_iter().take(n).map(|(c, _)| c).collect()
    }

    /// Figure 3: CDF of bytes downloaded over time, top-5 categories by
    /// bytes. One block per category, one line per day.
    pub fn figure3(&self) -> String {
        let totals: BTreeMap<BotCategory, f64> =
            self.category_bytes_cdf.iter().map(|(&c, s)| (c, s.total())).collect();
        let mut cats: Vec<(BotCategory, f64)> = totals.into_iter().collect();
        cats.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let edges: Vec<u64> =
            (0..self.days).map(|d| self.start.plus_secs((d + 1) * 86_400 - 1).unix()).collect();
        let mut out = String::from(
            "Figure 3. CDF of bytes downloaded over time (top 5 categories by bytes)\n",
        );
        for (cat, _) in cats.into_iter().take(5) {
            let curve = self.category_bytes_cdf[&cat].curve(&edges);
            let points: Vec<(String, f64)> = curve
                .iter()
                .enumerate()
                .map(|(d, &y)| {
                    (self.start.plus_secs(d as u64 * 86_400).to_iso8601()[..10].to_string(), y)
                })
                .collect();
            out.push_str(&series(&format!("-- {}", cat.name()), &points));
        }
        out
    }

    /// Figure 4: sessions per day, top-5 categories by session count.
    pub fn figure4(&self) -> String {
        let top = Self::top_categories(
            &self.category_sessions.iter().map(|(&c, &v)| (c, v as f64)).collect(),
            5,
        );
        let mut out =
            String::from("Figure 4. Scraper sessions per day (top 5 categories by sessions)\n");
        for cat in top {
            let points: Vec<(String, f64)> = (0..self.days)
                .map(|d| {
                    let n = self.category_daily_sessions.get(&(cat, d)).copied().unwrap_or(0);
                    (self.start.plus_secs(d * 86_400).to_iso8601()[..10].to_string(), n as f64)
                })
                .collect();
            out.push_str(&series(&format!("-- {}", cat.name()), &points));
        }
        out
    }

    /// Figure 10: proportion of bots re-checking robots.txt per window.
    pub fn figure10(&self) -> String {
        let mut out = String::from("Figure 10. Frequency of robots.txt checks across bot types\n");
        let mut t = TextTable::new(
            "(proportion of checking bots that re-check within each window)",
            &["Category", "12h", "24h", "48h", "72h", "168h", "#bots"],
        );
        for (&cat, &n) in &self.recheck.checking_bots {
            let cell = |h: u64| {
                self.recheck.proportions.get(&(cat, h)).map_or_else(|| "-".into(), |&p| f(p, 2))
            };
            t.row(vec![
                cat.name().to_string(),
                cell(12),
                cell(24),
                cell(48),
                cell(72),
                cell(168),
                n.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// Table 8: dominant vs suspicious ASNs per flagged bot.
    pub fn table8(&self) -> String {
        let mut t = TextTable::new(
            "Table 8. Bots with one dominant ASN and infrequent minority ASNs (possible spoofing)",
            &["Bot", "Main ASN (>90%)", "Possible spoofing ASNs", "Spoofed reqs"],
        );
        for finding in &self.spoof.findings {
            let suspicious: Vec<&str> =
                finding.suspicious.iter().map(|(n, _)| n.as_str()).collect();
            t.row(vec![
                finding.bot.clone(),
                format!("{} ({:.1}%)", finding.main_asn, finding.main_share * 100.0),
                suspicious.join(", "),
                finding.spoofed_requests.to_string(),
            ]);
        }
        t.render()
    }
}

// ---------------------------------------------------------------------
// Experiment (phase study) renderers.
// ---------------------------------------------------------------------

/// Table 4: traffic summary per robots.txt version.
pub fn table4(exp: &Experiment) -> String {
    let mut t = TextTable::new(
        "Table 4. Web traffic captured under each robots.txt version",
        &["robots.txt version", "unique site visits", "unique bot visitors"],
    );
    for p in &exp.phase_traffic {
        t.row(vec![
            p.version.label().to_string(),
            p.unique_site_visits.to_string(),
            p.unique_bot_visitors.to_string(),
        ]);
    }
    t.render()
}

/// Table 5: weighted category compliance per directive.
pub fn table5(exp: &Experiment) -> String {
    let table = exp.category_table();
    let mut t = TextTable::new(
        "Table 5. Compliance by bot category (access-weighted)",
        &["Bot category", "Crawl delay", "Endpoint access", "Disallow all", "Category average"],
    );
    for (cat, cells, avg) in &table.rows {
        let cell = |d: Directive| {
            cells
                .get(&d)
                .map_or_else(|| "-".into(), |c| format!("{} ({})", f(c.compliance, 3), c.weight))
        };
        t.row(vec![
            cat.name().to_string(),
            cell(Directive::CrawlDelay),
            cell(Directive::Endpoint),
            cell(Directive::Disallow),
            f(*avg, 3),
        ]);
    }
    let davg =
        |d: Directive| table.directive_average.get(&d).map_or_else(|| "-".into(), |&v| f(v, 3));
    t.row(vec![
        "Directive average".to_string(),
        davg(Directive::CrawlDelay),
        davg(Directive::Endpoint),
        davg(Directive::Disallow),
        String::new(),
    ]);
    t.render()
}

/// Table 6: per-bot metadata and compliance across the three directives.
pub fn table6(exp: &Experiment) -> String {
    let mut t = TextTable::new(
        "Table 6. Individual bot responses to the robots.txt directives",
        &["Bot", "Sponsor", "Category", "Promise", "Crawl delay", "Endpoint", "Disallow"],
    );
    // Union of bots across directives.
    let mut bots: BTreeMap<String, [Option<f64>; 3]> = BTreeMap::new();
    let mut meta: BTreeMap<String, (&'static str, BotCategory, &'static str)> = BTreeMap::new();
    for (i, d) in Directive::ALL.iter().enumerate() {
        for r in &exp.per_directive[d] {
            bots.entry(r.bot.clone()).or_default()[i] = r.compliance();
            meta.entry(r.bot.clone()).or_insert((r.sponsor, r.category, r.promise.label()));
        }
    }
    for (bot, cols) in &bots {
        let (sponsor, cat, promise) = meta[bot];
        t.row(vec![
            bot.clone(),
            sponsor.to_string(),
            cat.name().to_string(),
            promise.to_string(),
            ratio(cols[0]),
            ratio(cols[1]),
            ratio(cols[2]),
        ]);
    }
    t.render()
}

/// Table 7: bots that skipped a robots.txt check but (sometimes) complied.
pub fn table7(exp: &Experiment) -> String {
    let mut t = TextTable::new(
        "Table 7. Bots that skipped the robots.txt check during one or more experiments",
        &[
            "Bot",
            "Checked (crawl delay)",
            "Compliance",
            "Checked (endpoint)",
            "Compliance",
            "Checked (disallow)",
            "Compliance",
        ],
    );
    for (bot, dirs) in exp.skipped_checks() {
        let cell = |d: Directive| -> (String, String) {
            match dirs.get(&d) {
                Some(&(checked, comp)) => {
                    ((if checked { "Yes" } else { "No" }).to_string(), ratio(comp))
                }
                None => ("-".to_string(), "-".to_string()),
            }
        };
        let (c1, r1) = cell(Directive::CrawlDelay);
        let (c2, r2) = cell(Directive::Endpoint);
        let (c3, r3) = cell(Directive::Disallow);
        t.row(vec![bot, c1, r1, c2, r2, c3, r3]);
    }
    t.render()
}

/// Table 7 from *monitored* logs: per bot, whether it fetched
/// robots.txt on some site while each policy version was live there —
/// the digest-window columns derived by
/// [`crate::recheck::phase_check_matrix`].
pub fn table7_from_monitor(matrix: &[crate::recheck::PhaseCheckRow]) -> String {
    use crate::tables::yes_no;
    let mut t = TextTable::new(
        "Table 7 (monitored). Checked robots.txt while each version was live",
        &["Bot", "Category", "Checks", "Base", "v1", "v2", "v3"],
    );
    for row in matrix {
        t.row(vec![
            row.bot.clone(),
            row.category.to_string(),
            row.checks.to_string(),
            yes_no(row.checked[0]),
            yes_no(row.checked[1]),
            yes_no(row.checked[2]),
            yes_no(row.checked[3]),
        ]);
    }
    t.render()
}

/// Behavioral-only Table 7: the same digest-window columns, but over
/// deployment windows first coalesced across cosmetic transitions
/// (see [`crate::recheck::coalesce_behavioral_windows`]), so a column
/// only counts versions whose deployment actually changed a decision.
pub fn table7_behavioral(matrix: &[crate::recheck::PhaseCheckRow]) -> String {
    use crate::tables::yes_no;
    let mut t = TextTable::new(
        "Table 7 (monitored, behavioral transitions only). Checked robots.txt while each behaviorally distinct version was live",
        &["Bot", "Category", "Checks", "Base", "v1", "v2", "v3"],
    );
    for row in matrix {
        t.row(vec![
            row.bot.clone(),
            row.category.to_string(),
            row.checks.to_string(),
            yes_no(row.checked[0]),
            yes_no(row.checked[1]),
            yes_no(row.checked[2]),
            yes_no(row.checked[3]),
        ]);
    }
    t.render()
}

/// The coupled mode's attribution table: per bot, served-policy
/// compliance and the deliberate / stale-cache / fetch-artifact split
/// of its violations (see [`crate::attribution`]).
pub fn attribution_report(
    counts: &BTreeMap<String, crate::attribution::AttributionCounts>,
) -> String {
    let mut t = TextTable::new(
        "Attribution. Served-policy violations split by cause",
        &[
            "Bot",
            "Accesses",
            "Served-compliant",
            "Violations",
            "Deliberate",
            "Stale cache",
            "Fetch artifact",
            "Believed-violations",
        ],
    );
    for (bot, c) in counts {
        t.row(vec![
            bot.clone(),
            c.accesses.to_string(),
            ratio(c.served_compliance()),
            c.violations_served().to_string(),
            c.deliberate.to_string(),
            c.stale_cache.to_string(),
            c.fetch_artifact.to_string(),
            c.believed_violations.to_string(),
        ]);
    }
    t.render()
}

/// Table 9: legitimate vs potentially spoofed request volume per phase.
pub fn table9(exp: &Experiment) -> String {
    let mut t = TextTable::new(
        "Table 9. Legitimate vs potentially spoofed requests per directive",
        &["Directive", "Legitimate requests", "Potentially spoofed requests"],
    );
    for d in Directive::ALL {
        let (legit, spoofed) = exp.spoof_volume.get(&d).copied().unwrap_or((0, 0));
        t.row(vec![d.label().to_string(), legit.to_string(), spoofed.to_string()]);
    }
    t.render()
}

/// Table 10: z-scores and p-values per bot per directive.
pub fn table10(exp: &Experiment) -> String {
    let mut t = TextTable::new(
        "Table 10. Statistical significance of compliance changes (two-proportion z-test)",
        &["Bot", "CD z", "CD p", "EP z", "EP p", "DA z", "DA p"],
    );
    let mut bots: BTreeMap<String, [Option<(f64, f64)>; 3]> = BTreeMap::new();
    for (i, d) in Directive::ALL.iter().enumerate() {
        for r in &exp.per_directive[d] {
            bots.entry(r.bot.clone()).or_default()[i] = r.ztest.as_ref().map(|z| (z.z, z.p_value));
        }
    }
    let cell = |v: Option<(f64, f64)>| -> (String, String) {
        match v {
            Some((z, p)) => (f(z, 2), format!("{p:.2e}")),
            None => ("N/A".to_string(), "N/A".to_string()),
        }
    };
    for (bot, cols) in &bots {
        let (z1, p1) = cell(cols[0]);
        let (z2, p2) = cell(cols[1]);
        let (z3, p3) = cell(cols[2]);
        t.row(vec![bot.clone(), z1, p1, z2, p2, z3, p3]);
    }
    t.render()
}

/// Figure 9 (or 11 when `spoofed` is true): per-bot baseline vs
/// experiment compliance with significance markers.
pub fn figure9(exp: &Experiment, spoofed: bool) -> String {
    let source = if spoofed { &exp.spoofed_per_directive } else { &exp.per_directive };
    let title = if spoofed {
        "Figure 11. Compliance shifts for potentially spoofed bots"
    } else {
        "Figure 9. Compliance shifts per bot (default → experiment)"
    };
    let mut out = String::from(title);
    out.push('\n');
    for d in Directive::ALL {
        let mut t = TextTable::new(
            &format!("-- {}", d.label()),
            &["Bot", "Default", "Experiment", "Shift", "Significant (p<=0.05)"],
        );
        for r in &source[&d] {
            t.row(vec![
                r.bot.clone(),
                ratio(r.baseline.ratio()),
                ratio(r.experiment.ratio()),
                r.ztest.as_ref().map_or_else(|| "N/A".into(), |z| f(z.effect(), 3)),
                if r.significant() { "yes".into() } else { "no".into() },
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// The four policy files, as deployed (Figures 5–8).
pub fn policies() -> String {
    use botscope_simnet::phases::PolicyVersion;
    let mut out = String::new();
    for (fig, v) in [
        (5, PolicyVersion::Base),
        (6, PolicyVersion::V1CrawlDelay),
        (7, PolicyVersion::V2EndpointOnly),
        (8, PolicyVersion::V3DisallowAll),
    ] {
        out.push_str(&format!("Figure {fig}. {} robots.txt\n", v.label()));
        out.push_str(&v.robots_txt().to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_simnet::scenario::full_study;
    use botscope_simnet::SimConfig;

    fn small_full_study() -> FullStudyReport {
        let cfg = SimConfig { days: 5, scale: 0.05, sites: 6, ..SimConfig::default() };
        let out = full_study(&cfg);
        FullStudyReport::new(&out.records)
    }

    #[test]
    fn table2_shape() {
        let r = small_full_study();
        let text = r.table2();
        assert!(text.contains("All data"));
        assert!(text.contains("Known bots"));
        // All-data counts dominate known-bot counts.
        assert!(r.all.unique_user_agents > r.known.unique_user_agents);
        assert!(r.all.total_bytes >= r.known.total_bytes);
    }

    #[test]
    fn table3_top_bot_is_yisou_or_applebot() {
        let r = small_full_study();
        assert!(!r.bot_stats.is_empty());
        let top = &r.bot_stats[0];
        assert!(
            top.name == "YisouSpider" || top.name == "Applebot",
            "unexpected top bot {}",
            top.name
        );
        let text = r.table3();
        assert!(text.lines().count() >= 10);
    }

    #[test]
    fn figure2_has_search_engines_on_top() {
        let r = small_full_study();
        let text = r.figure2();
        let first_data_line = text.lines().nth(1).unwrap();
        assert!(
            first_data_line.starts_with("Search Engine Crawlers")
                || first_data_line.starts_with("AI Search Crawlers"),
            "{first_data_line}"
        );
    }

    #[test]
    fn figure3_curves_end_at_one() {
        let r = small_full_study();
        let text = r.figure3();
        // Every category block's last line approaches 1.0.
        for block in text.split("-- ").skip(1) {
            let last = block.lines().last().unwrap();
            let y: f64 = last.split_whitespace().last().unwrap().parse().unwrap();
            assert!(y > 0.99, "CDF must end at 1, got {y} in block {block}");
        }
    }

    #[test]
    fn figure4_renders_five_categories() {
        let r = small_full_study();
        let text = r.figure4();
        assert_eq!(text.matches("-- ").count(), 5.min(r.category_sessions.len()));
    }

    #[test]
    fn figure10_and_table8_render() {
        let r = small_full_study();
        let f10 = r.figure10();
        assert!(f10.contains("Category"));
        let t8 = r.table8();
        assert!(t8.contains("Main ASN"));
    }

    #[test]
    fn experiment_tables_render() {
        let cfg = SimConfig { scale: 0.15, sites: 3, ..SimConfig::default() };
        let exp = crate::analyze::Experiment::run(&cfg);
        for text in
            [table4(&exp), table5(&exp), table6(&exp), table7(&exp), table9(&exp), table10(&exp)]
        {
            assert!(text.lines().count() >= 4, "{text}");
        }
        let f9 = figure9(&exp, false);
        assert!(f9.contains("Crawl delay"));
        assert!(f9.contains("Significant"));
        let f11 = figure9(&exp, true);
        assert!(f11.contains("Figure 11"));
        let pol = policies();
        assert!(pol.contains("Figure 5"));
        assert!(pol.contains("Crawl-delay: 30"));
        assert!(pol.contains("Disallow: /"));
    }
}

//! Single-pass streaming analysis: the §4 pipeline over a sorted row
//! stream with bounded state.
//!
//! [`StreamAnalyzer`] consumes a canonically time-sorted stream of
//! interned rows — a [`botscope_weblog::stream::RowStream`] over a CSV
//! file, a binary [`botscope_weblog::colfmt`] file, or a generator's
//! k-way merge — and produces the exact [`Experiment`] that
//! [`Experiment::analyze_table`] computes from the materialized table.
//! Peak memory is the dictionary plus the per-bot working set (per-ASN
//! phase buckets and τ-delta accumulators), never the row set: a
//! scale-100 estate streams through in a few hundred megabytes where
//! materializing would take gigabytes.
//!
//! Equivalence argument, stage by stage:
//!
//! * **standardization** — one verdict per distinct user-agent symbol,
//!   cached in a dense slot array exactly like the table path's;
//! * **spoof detection** — per-ASN totals over experiment-site rows are
//!   order-free counts, and the dominance winner uses the same
//!   `(count, Reverse(name))` tie-break;
//! * **phase bucketing** — each row tests its timestamp against the
//!   base window and the three directive windows independently, the
//!   same predicate the table path applies per row;
//! * **crawl delay** — within a τ group (ASN fixed per accumulator, so
//!   the key is (IP hash, raw UA)) the stream's time order equals the
//!   table path's per-τ sort, making the running delta count identical;
//! * **sessions** — per-entity rows arrive time-sorted, so counting
//!   gap-exceeding deltas as they happen equals sort-then-count.

use std::collections::{BTreeMap, HashMap};

use botscope_stats::ztest::two_proportion_z_test;
use botscope_useragent::{BotSpec, Standardizer};
use botscope_weblog::codec::DecodeError;
use botscope_weblog::intern::{StringInterner, Sym};
use botscope_weblog::session::SESSION_GAP_SECS;
use botscope_weblog::stream::RowStream;
use botscope_weblog::table::RecordRow;

use botscope_simnet::phases::{is_exempt_agent, PhaseSchedule, PolicyVersion};

use crate::analyze::{BotDirectiveResult, Directive, Experiment, PhaseTraffic, MIN_ACCESSES};
use crate::metrics::{DirectiveCounts, CRAWL_DELAY_SECS};
use crate::spoofdetect::{SpoofFinding, SpoofReport, DOMINANCE_THRESHOLD, MIN_DETECT_REQUESTS};

/// Per-symbol classification flags, grown lazily as the stream's
/// interner grows.
const FLAG_ROBOTS: u8 = 1;
const FLAG_PAGE_DATA: u8 = 2;
const FLAG_SITE: u8 = 4;

/// `ua_slot` sentinel: symbol not yet standardized.
const SLOT_UNKNOWN: u32 = u32::MAX;
/// `ua_slot` sentinel: symbol matched no known bot.
const SLOT_ANON: u32 = u32::MAX - 1;

/// Running crawl-delay state of one τ group (IP hash × raw UA within a
/// fixed (bot, ASN) bucket): access count, last timestamp, compliant
/// deltas so far.
#[derive(Debug, Clone, Copy)]
struct TauAcc {
    count: u64,
    last: u64,
    compliant: u64,
}

impl TauAcc {
    fn push(&mut self, t: u64) {
        self.count += 1;
        if self.count > 1 && t.saturating_sub(self.last) >= CRAWL_DELAY_SECS {
            self.compliant += 1;
        }
        self.last = t;
    }

    /// The paper's rule: a single-access τ counts as one compliant
    /// instance; otherwise deltas are the trials.
    fn finish(&self) -> DirectiveCounts {
        if self.count == 1 {
            DirectiveCounts { successes: 1, trials: 1 }
        } else {
            DirectiveCounts { successes: self.compliant, trials: self.count - 1 }
        }
    }
}

/// One phase-window bucket of one (bot, ASN) pair: everything the three
/// directive metrics need, accumulated row by row.
#[derive(Debug, Clone, Default)]
struct BucketAcc {
    rows: u64,
    robots: u64,
    endpoint: u64,
    tau: HashMap<(u64, Sym), TauAcc>,
}

impl BucketAcc {
    fn push(&mut self, row: &RecordRow, robots: bool, page_data: bool) {
        self.rows += 1;
        if robots {
            self.robots += 1;
        }
        if robots || page_data {
            self.endpoint += 1;
        }
        self.tau
            .entry((row.ip_hash, row.useragent))
            .or_insert(TauAcc { count: 0, last: 0, compliant: 0 })
            .push(row.timestamp.unix());
    }

    /// Finalized order-free stats: τ maps collapse to counts here, so
    /// stats from different ASNs can be summed without ever merging τ
    /// groups across ASN boundaries.
    fn finish(&self) -> BucketStats {
        let mut cd = DirectiveCounts::default();
        for acc in self.tau.values() {
            cd.merge(acc.finish());
        }
        BucketStats { rows: self.rows, robots: self.robots, endpoint: self.endpoint, cd }
    }
}

/// A finalized bucket: additive across ASNs.
#[derive(Debug, Clone, Copy, Default)]
struct BucketStats {
    rows: u64,
    robots: u64,
    endpoint: u64,
    cd: DirectiveCounts,
}

impl BucketStats {
    fn merge(&mut self, other: &BucketStats) {
        self.rows += other.rows;
        self.robots += other.robots;
        self.endpoint += other.endpoint;
        self.cd.merge(other.cd);
    }

    /// The directive's success/trial pair out of this bucket.
    fn counts(&self, directive: Directive) -> DirectiveCounts {
        match directive {
            Directive::CrawlDelay => self.cd,
            Directive::Endpoint => DirectiveCounts { successes: self.endpoint, trials: self.rows },
            Directive::Disallow => DirectiveCounts { successes: self.robots, trials: self.rows },
        }
    }
}

/// One ASN's accumulation for one bot: experiment-site total plus the
/// four phase buckets (base + one per directive).
#[derive(Debug, Clone, Default)]
struct AsnAcc {
    total: u64,
    buckets: [BucketAcc; 4],
}

/// Everything one canonical bot accumulates over the stream.
struct BotAcc {
    spec: &'static BotSpec,
    /// Per-ASN site-row accumulators. Entries exist only for ASNs seen
    /// on *experiment-site* rows, mirroring the table path's detector
    /// input.
    per_asn: HashMap<Sym, AsnAcc>,
    /// Estate-wide robots.txt fetch seen within each directive window
    /// (the Table 7 "checked robots.txt" signal).
    robots_window: [bool; 3],
    /// Experiment-site presence per `schedule.phases` entry (Table 4).
    presence: Vec<bool>,
}

/// Session counting for one phase window: entity → last timestamp, plus
/// the running session count. The map is dropped as soon as the stream
/// moves past the window's end, so at most one phase map is live at a
/// time under the paper's sequential schedule.
struct PhaseSessions {
    start: u64,
    end: u64,
    last_seen: Option<HashMap<(Sym, u64, Sym), u64>>,
    sessions: usize,
}

impl PhaseSessions {
    fn push(&mut self, row: &RecordRow, t: u64) {
        if t >= self.end {
            self.last_seen = None;
            return;
        }
        if t < self.start {
            return;
        }
        let map = self.last_seen.get_or_insert_with(HashMap::new);
        match map.insert((row.useragent, row.ip_hash, row.asn), t) {
            None => self.sessions += 1,
            Some(last) => {
                if t.saturating_sub(last) >= SESSION_GAP_SECS {
                    self.sessions += 1;
                }
            }
        }
    }
}

/// The deployment windows, as in the table path: base plus one window
/// per directive in [`Directive::ALL`] order.
struct Windows {
    base: (u64, u64),
    directives: [(u64, u64); 3],
}

/// Push-based single-pass analysis engine. Feed canonically time-sorted
/// rows via [`StreamAnalyzer::push_row`], then call
/// [`StreamAnalyzer::finish`]; the result is identical to
/// [`Experiment::analyze_table`] over the same rows.
pub struct StreamAnalyzer {
    schedule: PhaseSchedule,
    site_name: String,
    windows: Windows,
    standardizer: Standardizer,
    /// Per-symbol flags and user-agent verdicts, indexed by `Sym::index`.
    flags: Vec<u8>,
    ua_slot: Vec<u32>,
    bots: Vec<BotAcc>,
    slot_by_name: BTreeMap<&'static str, u32>,
    phase_sessions: Vec<PhaseSessions>,
    last_t: u64,
    /// Plain (non-atomic) telemetry tallies, flushed to the global
    /// registry once at [`StreamAnalyzer::finish`] so the per-row path
    /// carries zero instrumentation cost: rows seen, then rows landing
    /// in the base window and each directive window.
    obs_rows: u64,
    obs_window_rows: [u64; 4],
}

impl StreamAnalyzer {
    /// An analyzer for `schedule`. Panics (like the table path) if the
    /// schedule is missing any of the four policy versions.
    pub fn new(schedule: &PhaseSchedule) -> StreamAnalyzer {
        let window_of = |version: PolicyVersion| -> (u64, u64) {
            let (lo, hi) = schedule.window_of(version).expect("version scheduled");
            (lo.unix(), hi.unix())
        };
        let windows = Windows {
            base: window_of(PolicyVersion::Base),
            directives: Directive::ALL.map(|d| window_of(d.version())),
        };
        let phase_sessions = schedule
            .phases
            .iter()
            .map(|p| PhaseSessions {
                start: p.start.unix(),
                end: p.end.unix(),
                last_seen: None,
                sessions: 0,
            })
            .collect();
        StreamAnalyzer {
            schedule: schedule.clone(),
            site_name: format!("site-{:02}.example.edu", schedule.experiment_site),
            windows,
            standardizer: Standardizer::new(),
            flags: Vec::new(),
            ua_slot: Vec::new(),
            bots: Vec::new(),
            slot_by_name: BTreeMap::new(),
            phase_sessions,
            last_t: 0,
            obs_rows: 0,
            obs_window_rows: [0; 4],
        }
    }

    /// Classify any symbols interned since the last row. The interner
    /// only appends, so earlier indices never change.
    fn grow(&mut self, interner: &StringInterner) {
        if self.flags.len() == interner.len() {
            return;
        }
        for (_, s) in interner.iter().skip(self.flags.len()) {
            let mut f = 0u8;
            if s == "/robots.txt" {
                f |= FLAG_ROBOTS;
            }
            if s.starts_with("/page-data/") {
                f |= FLAG_PAGE_DATA;
            }
            if s == self.site_name {
                f |= FLAG_SITE;
            }
            self.flags.push(f);
            self.ua_slot.push(SLOT_UNKNOWN);
        }
    }

    /// Consume one row. Rows must arrive in canonical order (time-sorted
    /// first), the order every workspace producer emits.
    pub fn push_row(&mut self, row: &RecordRow, interner: &StringInterner) {
        self.grow(interner);
        let t = row.timestamp.unix();
        debug_assert!(t >= self.last_t, "stream must be time-sorted");
        self.last_t = t;
        self.obs_rows += 1;

        let is_site = self.flags[row.sitename.index()] & FLAG_SITE != 0;

        // Table 4 sessions run over every experiment-site row, known bot
        // or not; expiry runs on every row so dead maps free promptly.
        for phase in &mut self.phase_sessions {
            if is_site {
                phase.push(row, t);
            } else if t >= phase.end {
                phase.last_seen = None;
            }
        }

        // Standardize this user agent if it is new.
        let ua_idx = row.useragent.index();
        if self.ua_slot[ua_idx] == SLOT_UNKNOWN {
            self.ua_slot[ua_idx] =
                match self.standardizer.standardize(interner.resolve(row.useragent)).map(|s| s.bot)
                {
                    None => SLOT_ANON,
                    Some(spec) => {
                        let n_phases = self.schedule.phases.len();
                        *self.slot_by_name.entry(spec.canonical).or_insert_with(|| {
                            self.bots.push(BotAcc {
                                spec,
                                per_asn: HashMap::new(),
                                robots_window: [false; 3],
                                presence: vec![false; n_phases],
                            });
                            (self.bots.len() - 1) as u32
                        })
                    }
                };
        }
        let slot = self.ua_slot[ua_idx];
        if slot == SLOT_ANON {
            return;
        }
        let bot = &mut self.bots[slot as usize];

        // Estate-wide robots.txt fetches drive the Table 7 signal even
        // when they land on a sister site.
        let robots = self.flags[row.uri_path.index()] & FLAG_ROBOTS != 0;
        if robots {
            for (d, &(lo, hi)) in self.windows.directives.iter().enumerate() {
                if t >= lo && t < hi {
                    bot.robots_window[d] = true;
                }
            }
        }
        if !is_site {
            return;
        }

        for (i, p) in self.schedule.phases.iter().enumerate() {
            if t >= p.start.unix() && t < p.end.unix() {
                bot.presence[i] = true;
            }
        }

        let page_data = self.flags[row.uri_path.index()] & FLAG_PAGE_DATA != 0;
        let acc = bot.per_asn.entry(row.asn).or_default();
        acc.total += 1;
        let (lo, hi) = self.windows.base;
        if t >= lo && t < hi {
            acc.buckets[0].push(row, robots, page_data);
            self.obs_window_rows[0] += 1;
        }
        for (d, &(lo, hi)) in self.windows.directives.iter().enumerate() {
            if t >= lo && t < hi {
                acc.buckets[d + 1].push(row, robots, page_data);
                self.obs_window_rows[d + 1] += 1;
            }
        }
    }

    /// Finalize into the [`Experiment`] the table path would produce.
    /// `interner` must be the stream's final interner (a superset of
    /// every symbol pushed).
    pub fn finish(self, interner: &StringInterner) -> Experiment {
        let obs = botscope_obs::global();
        obs.counter("stream_rows_total").add(self.obs_rows);
        for (i, window) in ["base", "crawl_delay", "endpoint", "disallow"].into_iter().enumerate() {
            obs.counter(&format!("stream_window_rows_total{{window=\"{window}\"}}"))
                .add(self.obs_window_rows[i]);
        }
        let mut per_directive: BTreeMap<Directive, Vec<BotDirectiveResult>> =
            Directive::ALL.into_iter().map(|d| (d, Vec::new())).collect();
        let mut spoofed_per_directive = per_directive.clone();
        let mut spoof_volume: BTreeMap<Directive, (u64, u64)> =
            Directive::ALL.into_iter().map(|d| (d, (0, 0))).collect();
        let mut findings: Vec<SpoofFinding> = Vec::new();
        let mut presence_counts = vec![0usize; self.schedule.phases.len()];

        // Canonical-name order, matching the table path's BTreeMap walk.
        for (&name, &slot) in &self.slot_by_name {
            let bot = &self.bots[slot as usize];
            for (i, &p) in bot.presence.iter().enumerate() {
                if p {
                    presence_counts[i] += 1;
                }
            }

            let site_total: u64 = bot.per_asn.values().map(|a| a.total).sum();

            // The §5.2 dominance detection, with the detector's exact
            // gating and (count, Reverse(name)) winner tie-break.
            let finding_main: Option<Sym> =
                if site_total >= MIN_DETECT_REQUESTS && bot.per_asn.len() >= 2 {
                    let (&main_sym, main_acc) = bot
                        .per_asn
                        .iter()
                        .max_by_key(|&(&sym, acc)| {
                            (acc.total, std::cmp::Reverse(interner.resolve(sym)))
                        })
                        .expect("non-empty per-ASN map");
                    let main_share = main_acc.total as f64 / site_total as f64;
                    if main_share >= DOMINANCE_THRESHOLD {
                        let mut suspicious: Vec<(String, u64)> = bot
                            .per_asn
                            .iter()
                            .filter(|&(&sym, _)| sym != main_sym)
                            .map(|(&sym, acc)| (interner.resolve(sym).to_string(), acc.total))
                            .collect();
                        suspicious.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                        let spoofed_requests = suspicious.iter().map(|&(_, c)| c).sum();
                        findings.push(SpoofFinding {
                            bot: name.to_string(),
                            main_asn: interner.resolve(main_sym).to_string(),
                            main_share,
                            suspicious,
                            total_requests: site_total,
                            spoofed_requests,
                        });
                        Some(main_sym)
                    } else {
                        None
                    }
                } else {
                    None
                };

            // Legit = the dominant ASN's buckets when flagged, otherwise
            // everything; spoofed = the minority remainder when flagged.
            let mut legit = [BucketStats::default(); 4];
            let mut spoofed = [BucketStats::default(); 4];
            for (&sym, acc) in &bot.per_asn {
                let target = match finding_main {
                    None => &mut legit,
                    Some(main) if sym == main => &mut legit,
                    Some(_) => &mut spoofed,
                };
                for (j, bucket) in acc.buckets.iter().enumerate() {
                    target[j].merge(&bucket.finish());
                }
            }

            let exempt = is_exempt_agent(name);
            for (idx, directive) in Directive::ALL.into_iter().enumerate() {
                let (legit_base, legit_phase) = (&legit[0], &legit[idx + 1]);
                let volume = spoof_volume.get_mut(&directive).expect("all directives present");
                volume.0 += legit_phase.rows;
                if !exempt
                    && legit_base.rows >= MIN_ACCESSES as u64
                    && legit_phase.rows >= MIN_ACCESSES as u64
                {
                    let checked = bot.robots_window[idx] || legit_phase.robots > 0;
                    per_directive
                        .get_mut(&directive)
                        .expect("all directives present")
                        .push(make_row(bot.spec, directive, legit_base, legit_phase, checked));
                }

                let (sp_base, sp_phase) = (&spoofed[0], &spoofed[idx + 1]);
                volume.1 += sp_phase.rows;
                if sp_base.rows > 0 && sp_phase.rows > 0 {
                    let checked = sp_phase.robots > 0;
                    spoofed_per_directive
                        .get_mut(&directive)
                        .expect("all directives present")
                        .push(make_row(bot.spec, directive, sp_base, sp_phase, checked));
                }
            }
        }

        let phase_traffic = self
            .schedule
            .phases
            .iter()
            .zip(&self.phase_sessions)
            .zip(&presence_counts)
            .map(|((p, sessions), &bots)| PhaseTraffic {
                version: p.version,
                unique_site_visits: sessions.sessions,
                unique_bot_visitors: bots,
            })
            .collect();

        Experiment {
            per_directive,
            spoofed_per_directive,
            phase_traffic,
            spoof_report: SpoofReport { findings },
            spoof_volume,
            truth: None,
            schedule: self.schedule,
        }
    }
}

/// One bot × directive result out of finalized buckets — the streaming
/// equivalent of the table path's `make_row`.
fn make_row(
    spec: &'static BotSpec,
    directive: Directive,
    base: &BucketStats,
    phase: &BucketStats,
    checked_robots: bool,
) -> BotDirectiveResult {
    let baseline = base.counts(directive);
    let experiment = phase.counts(directive);
    let ztest = two_proportion_z_test(
        experiment.successes,
        experiment.trials,
        baseline.successes,
        baseline.trials,
    );
    BotDirectiveResult {
        bot: spec.canonical.to_string(),
        category: spec.category,
        promise: spec.respects_robots,
        sponsor: spec.sponsor,
        baseline,
        experiment,
        ztest,
        checked_robots,
        accesses: phase.rows,
    }
}

impl Experiment {
    /// Analyze a canonically sorted row stream in a single pass with
    /// bounded state. Identical output to [`Experiment::analyze_table`]
    /// over the same rows; the rows themselves are never held.
    pub fn analyze_stream<S: RowStream + ?Sized>(
        stream: &mut S,
        schedule: &PhaseSchedule,
    ) -> Result<Experiment, DecodeError> {
        let mut analyzer = StreamAnalyzer::new(schedule);
        while let Some(row) = stream.next_row() {
            let row = row?;
            analyzer.push_row(&row, stream.interner());
        }
        Ok(analyzer.finish(stream.interner()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_simnet::scenario::phase_study_table;
    use botscope_simnet::SimConfig;
    use botscope_weblog::stream::TableRowStream;

    #[test]
    fn stream_matches_table_analysis() {
        let cfg = SimConfig { scale: 0.05, sites: 3, ..SimConfig::default() };
        let out = phase_study_table(&cfg);
        let expected = Experiment::analyze_table_with_threads(&out.sim.table, &out.schedule, 1);
        let mut stream = TableRowStream::new(&out.sim.table);
        let got = Experiment::analyze_stream(&mut stream, &out.schedule).expect("clean stream");
        assert_eq!(got.per_directive, expected.per_directive);
        assert_eq!(got.spoofed_per_directive, expected.spoofed_per_directive);
        assert_eq!(got.phase_traffic, expected.phase_traffic);
        assert_eq!(got.spoof_report, expected.spoof_report);
        assert_eq!(got.spoof_volume, expected.spoof_volume);
    }

    #[test]
    fn empty_stream_is_clean() {
        let cfg = SimConfig { scale: 0.02, sites: 3, ..SimConfig::default() };
        let out = phase_study_table(&cfg);
        let empty = botscope_weblog::table::LogTable::new();
        let mut stream = TableRowStream::new(&empty);
        let exp = Experiment::analyze_stream(&mut stream, &out.schedule).expect("empty ok");
        assert!(exp.spoof_report.findings.is_empty());
        for d in Directive::ALL {
            assert!(exp.per_directive[&d].is_empty());
            assert_eq!(exp.spoof_volume[&d], (0, 0));
        }
        assert_eq!(exp.phase_traffic.len(), out.schedule.phases.len());
        assert!(exp.phase_traffic.iter().all(|p| p.unique_site_visits == 0));
    }
}

//! Honeypot / trap-path analysis (extension; paper §5.2 limitations and
//! §6 future work).
//!
//! The paper closes its spoofing study noting that the ASN heuristic
//! "does not allow us to definitively state whether a bot is spoofing"
//! and proposes honeypots as future work. This module implements the
//! log-side half of that idea using the paths the institution's *base*
//! robots.txt has always disallowed (`/404`, `/dev-404-page`,
//! `/secure/*`): any fetch of these **trap paths** is robots.txt
//! non-compliance regardless of the experiment phase, since every policy
//! version restricts them.
//!
//! Two uses:
//!
//! * [`trap_report`] — per-bot trap-hit rates: a behavioural
//!   non-compliance signal that needs no controlled experiment at all;
//! * [`spoof_corroboration`] — the future-work idea proper: for a bot
//!   flagged by the ASN heuristic, compare the trap-hit rate of its
//!   dominant-network traffic against its minority-network traffic. A
//!   minority that hits traps while the main network does not is strong
//!   corroboration that the minority is an impostor.

use botscope_stats::ci::{wilson, ProportionCi};
use botscope_weblog::record::AccessRecord;

use crate::pipeline::StandardizedLogs;
use crate::spoofdetect::{split_records, SpoofReport};

/// Whether a path is one of the always-disallowed trap paths.
pub fn is_trap_path(path: &str) -> bool {
    path == "/404" || path == "/dev-404-page" || path.starts_with("/secure/")
}

/// Per-bot trap statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrapRow {
    /// Canonical bot name.
    pub bot: String,
    /// Accesses that hit a trap path.
    pub trap_hits: u64,
    /// Total accesses.
    pub total: u64,
    /// Wilson 95 % interval on the trap-hit rate.
    pub rate_ci: Option<ProportionCi>,
}

impl TrapRow {
    /// Point trap-hit rate.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.trap_hits as f64 / self.total as f64
        }
    }
}

/// Per-bot trap report, sorted by descending trap rate then name.
pub fn trap_report(logs: &StandardizedLogs<'_>, min_accesses: u64) -> Vec<TrapRow> {
    let mut rows: Vec<TrapRow> = logs
        .bots
        .values()
        .filter(|v| v.records.len() as u64 >= min_accesses)
        .map(|v| {
            let total = v.records.len() as u64;
            let trap_hits = v.records.iter().filter(|r| is_trap_path(&r.uri_path)).count() as u64;
            TrapRow {
                bot: v.name.clone(),
                trap_hits,
                total,
                rate_ci: wilson(trap_hits, total, 0.95),
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.rate().partial_cmp(&a.rate()).expect("rates are finite").then(a.bot.cmp(&b.bot))
    });
    rows
}

/// Corroboration verdict for one ASN-flagged bot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoofCorroboration {
    /// Canonical bot name.
    pub bot: String,
    /// Trap rate of the dominant-network traffic.
    pub main_trap_rate: f64,
    /// Trap rate of the minority-network traffic.
    pub minority_trap_rate: f64,
    /// Minority request count (tiny by construction of the heuristic).
    pub minority_requests: u64,
    /// Whether the honeypot evidence corroborates spoofing: the minority
    /// hits traps at a strictly higher rate than the main network.
    pub corroborated: bool,
}

/// Run trap-based corroboration for every finding of the ASN heuristic.
pub fn spoof_corroboration(
    logs: &StandardizedLogs<'_>,
    spoof: &SpoofReport,
) -> Vec<SpoofCorroboration> {
    let mut out = Vec::new();
    for finding in &spoof.findings {
        let Some(view) = logs.bots.get(&finding.bot) else { continue };
        let (main, minority): (Vec<&AccessRecord>, Vec<&AccessRecord>) =
            split_records(finding, &view.records);
        let rate = |records: &[&AccessRecord]| {
            if records.is_empty() {
                return 0.0;
            }
            records.iter().filter(|r| is_trap_path(&r.uri_path)).count() as f64
                / records.len() as f64
        };
        let main_rate = rate(&main);
        let minority_rate = rate(&minority);
        out.push(SpoofCorroboration {
            bot: finding.bot.clone(),
            main_trap_rate: main_rate,
            minority_trap_rate: minority_rate,
            minority_requests: minority.len() as u64,
            corroborated: minority_rate > main_rate && !minority.is_empty(),
        });
    }
    out
}

/// Render both reports.
pub fn render(logs: &StandardizedLogs<'_>, spoof: &SpoofReport) -> String {
    use crate::tables::{f, TextTable};
    let mut t = TextTable::new(
        "Extension: trap-path (honeypot) hits — fetching /404, /dev-404-page or /secure/* is always non-compliant",
        &["Bot", "Trap hits", "Total", "Rate", "95% CI"],
    );
    for row in trap_report(logs, 20).into_iter().take(15) {
        let ci =
            row.rate_ci.map_or_else(|| "-".into(), |c| format!("[{}, {}]", f(c.lo, 3), f(c.hi, 3)));
        t.row(vec![
            row.bot.clone(),
            row.trap_hits.to_string(),
            row.total.to_string(),
            f(row.rate(), 4),
            ci,
        ]);
    }
    let mut out = t.render();
    out.push('\n');
    let mut t = TextTable::new(
        "Honeypot corroboration of ASN-flagged spoofing (paper future work)",
        &["Bot", "Main-ASN trap rate", "Minority trap rate", "Minority reqs", "Corroborated"],
    );
    for c in spoof_corroboration(logs, spoof) {
        t.row(vec![
            c.bot,
            f(c.main_trap_rate, 4),
            f(c.minority_trap_rate, 4),
            c.minority_requests.to_string(),
            if c.corroborated { "yes".into() } else { "no".into() },
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::standardize;
    use crate::spoofdetect::detect;
    use botscope_weblog::time::Timestamp;

    fn rec(ua: &str, asn: &str, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: asn.into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    #[test]
    fn trap_path_classification() {
        assert!(is_trap_path("/404"));
        assert!(is_trap_path("/dev-404-page"));
        assert!(is_trap_path("/secure/admin-1"));
        assert!(!is_trap_path("/40404"));
        assert!(!is_trap_path("/page-data/x"));
        assert!(!is_trap_path("/securely-public"));
    }

    #[test]
    fn trap_report_ranks_violators_first() {
        let mut records = Vec::new();
        // Bytespider: 5 of 25 hits are traps.
        for t in 0..20 {
            records.push(rec("Bytespider; x@bytedance.com", "CHINANET-BACKBONE", t, "/page"));
        }
        for t in 20..25 {
            records.push(rec("Bytespider; x@bytedance.com", "CHINANET-BACKBONE", t, "/secure/a"));
        }
        // GPTBot: clean.
        for t in 0..25 {
            records.push(rec(
                "Mozilla/5.0 (compatible; GPTBot/1.1)",
                "MICROSOFT-CORP-MSN-AS-BLOCK",
                t,
                "/page",
            ));
        }
        let logs = standardize(&records);
        let rows = trap_report(&logs, 10);
        assert_eq!(rows[0].bot, "Bytespider");
        assert_eq!(rows[0].trap_hits, 5);
        assert!((rows[0].rate() - 0.2).abs() < 1e-12);
        let gpt = rows.iter().find(|r| r.bot == "GPTBot").unwrap();
        assert_eq!(gpt.trap_hits, 0);
        // CI sanity.
        let ci = rows[0].rate_ci.unwrap();
        assert!(ci.contains(0.2));
    }

    #[test]
    fn min_access_filter() {
        let records = vec![rec("Mozilla/5.0 (compatible; GPTBot/1.1)", "A", 0, "/x")];
        let logs = standardize(&records);
        assert!(trap_report(&logs, 10).is_empty());
        assert_eq!(trap_report(&logs, 1).len(), 1);
    }

    #[test]
    fn corroboration_detects_misbehaving_minority() {
        let ua = "Mozilla/5.0 (compatible; Googlebot/2.1)";
        let mut records = Vec::new();
        // Main network: 95 clean requests.
        for t in 0..95 {
            records.push(rec(ua, "GOOGLE", t, "/page"));
        }
        // Minority network: 5 requests, 3 of them trap hits.
        for t in 95..98 {
            records.push(rec(ua, "M247", t, "/secure/x"));
        }
        records.push(rec(ua, "M247", 98, "/page"));
        records.push(rec(ua, "M247", 99, "/page"));
        let logs = standardize(&records);
        let spoof = detect(&logs.per_bot_records());
        let cs = spoof_corroboration(&logs, &spoof);
        let g = cs.iter().find(|c| c.bot == "Googlebot").expect("flagged");
        assert_eq!(g.main_trap_rate, 0.0);
        assert!((g.minority_trap_rate - 0.6).abs() < 1e-12);
        assert!(g.corroborated);
    }

    #[test]
    fn clean_minority_not_corroborated() {
        let ua = "Mozilla/5.0 (compatible; Googlebot/2.1)";
        let mut records = Vec::new();
        for t in 0..95 {
            records.push(rec(ua, "GOOGLE", t, "/page"));
        }
        for t in 95..100 {
            records.push(rec(ua, "M247", t, "/page"));
        }
        let logs = standardize(&records);
        let spoof = detect(&logs.per_bot_records());
        let cs = spoof_corroboration(&logs, &spoof);
        let g = cs.iter().find(|c| c.bot == "Googlebot").expect("flagged");
        assert!(!g.corroborated);
    }

    #[test]
    fn render_smoke() {
        let records = vec![rec("Mozilla/5.0 (compatible; GPTBot/1.1)", "A", 0, "/x")];
        let logs = standardize(&records);
        let spoof = detect(&logs.per_bot_records());
        let text = render(&logs, &spoof);
        assert!(text.contains("honeypot"));
        assert!(text.contains("Corroborated") || text.contains("corroboration"));
    }
}

//! Promise-vs-practice analysis (extension).
//!
//! Table 6 records each bot's public promise to respect robots.txt; the
//! paper's RQ3 discussion contrasts bots like PerplexityBot ("explicitly
//! stated they will not respect robots.txt [but] have somewhat high
//! compliance") with BrightEdge ("claim to respect robots.txt but have
//! low compliance"). This module systematizes that contrast: compliance
//! aggregated by promise class, plus the named promise-breakers and
//! surprise-compliers.

use std::collections::BTreeMap;

use botscope_stats::describe::WeightedMeanAccumulator;
use botscope_useragent::RobotsPromise;

use crate::analyze::{BotDirectiveResult, Directive, Experiment};

/// Compliance aggregated over one promise class for one directive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PromiseCell {
    /// Access-weighted mean compliance.
    pub compliance: f64,
    /// Number of bots in the class.
    pub bots: usize,
    /// Total accesses behind the mean.
    pub weight: u64,
}

/// The promise × directive cross-tab.
#[derive(Debug, Clone, Default)]
pub struct PromiseTable {
    /// (promise, directive) → cell.
    pub cells: BTreeMap<(&'static str, Directive), PromiseCell>,
}

/// A bot whose behaviour contradicts its stated policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Contradiction {
    /// Canonical bot name.
    pub bot: String,
    /// Its public promise.
    pub promise: RobotsPromise,
    /// The directive where the contradiction shows.
    pub directive: Directive,
    /// Measured compliance.
    pub compliance: f64,
}

/// Build the promise × directive cross-tab from an experiment.
pub fn promise_table(exp: &Experiment) -> PromiseTable {
    let mut table = PromiseTable::default();
    for directive in Directive::ALL {
        for promise in [RobotsPromise::Yes, RobotsPromise::No, RobotsPromise::Unknown] {
            let rows: Vec<&BotDirectiveResult> =
                exp.per_directive[&directive].iter().filter(|r| r.promise == promise).collect();
            let mut acc = WeightedMeanAccumulator::new();
            let mut weight = 0u64;
            for r in &rows {
                if let Some(c) = r.compliance() {
                    acc.add(c, r.accesses as f64);
                    weight += r.accesses;
                }
            }
            if let Some(m) = acc.finish() {
                table.cells.insert(
                    (promise.label(), directive),
                    PromiseCell { compliance: m, bots: rows.len(), weight },
                );
            }
        }
    }
    table
}

/// Find contradictions: promisers with compliance below `low` (the
/// BrightEdge pattern) and refusers with compliance above `high` (the
/// PerplexityBot pattern).
pub fn contradictions(exp: &Experiment, low: f64, high: f64) -> Vec<Contradiction> {
    assert!(low < high, "thresholds inverted");
    let mut out = Vec::new();
    for directive in Directive::ALL {
        for r in &exp.per_directive[&directive] {
            let Some(c) = r.compliance() else { continue };
            let contradicts = match r.promise {
                RobotsPromise::Yes => c < low,
                RobotsPromise::No => c > high,
                RobotsPromise::Unknown => false,
            };
            if contradicts {
                out.push(Contradiction {
                    bot: r.bot.clone(),
                    promise: r.promise,
                    directive,
                    compliance: c,
                });
            }
        }
    }
    out.sort_by(|a, b| a.bot.cmp(&b.bot).then(a.directive.cmp(&b.directive)));
    out
}

/// Render both outputs.
pub fn render(exp: &Experiment) -> String {
    use crate::tables::{f, TextTable};
    let table = promise_table(exp);
    let mut t = TextTable::new(
        "Extension: does a public promise to respect robots.txt predict compliance?",
        &["Promise", "Crawl delay", "Endpoint access", "Disallow all"],
    );
    for promise in ["Yes", "No", "Unknown"] {
        let cell = |d: Directive| {
            table
                .cells
                .get(&(promise, d))
                .map_or_else(|| "-".into(), |c| format!("{} ({} bots)", f(c.compliance, 3), c.bots))
        };
        t.row(vec![
            promise.to_string(),
            cell(Directive::CrawlDelay),
            cell(Directive::Endpoint),
            cell(Directive::Disallow),
        ]);
    }
    let mut out = t.render();
    out.push('\n');
    let mut t = TextTable::new(
        "Contradictions (promise broken <0.25 / refusal outperformed >0.75)",
        &["Bot", "Promise", "Directive", "Measured compliance"],
    );
    for c in contradictions(exp, 0.25, 0.75) {
        t.row(vec![
            c.bot,
            c.promise.label().to_string(),
            c.directive.label().to_string(),
            f(c.compliance, 3),
        ]);
    }
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_simnet::SimConfig;
    use std::sync::OnceLock;

    fn experiment() -> &'static Experiment {
        static EXP: OnceLock<Experiment> = OnceLock::new();
        EXP.get_or_init(|| {
            Experiment::run(&SimConfig { scale: 0.2, sites: 4, ..SimConfig::default() })
        })
    }

    #[test]
    fn table_covers_promise_classes() {
        let t = promise_table(experiment());
        assert!(t.cells.keys().any(|(p, _)| *p == "Yes"));
        assert!(t.cells.keys().any(|(p, _)| *p == "Unknown"));
        for cell in t.cells.values() {
            assert!((0.0..=1.0 + 1e-9).contains(&cell.compliance));
            assert!(cell.bots > 0);
        }
    }

    #[test]
    fn promisers_beat_unknowns_on_access_directives() {
        // The registry's Unknown class is dominated by HTTP libraries and
        // headless tooling; self-identified promisers should comply more
        // with the disallow directive.
        let t = promise_table(experiment());
        let yes = t.cells.get(&("Yes", Directive::Disallow));
        let unknown = t.cells.get(&("Unknown", Directive::Disallow));
        if let (Some(yes), Some(unknown)) = (yes, unknown) {
            assert!(
                yes.compliance > unknown.compliance,
                "promisers {} vs unknown {}",
                yes.compliance,
                unknown.compliance
            );
        }
    }

    #[test]
    fn brightedge_pattern_detected() {
        // BrightEdge promises Yes but was planted with disallow = 0.0.
        let cs = contradictions(experiment(), 0.25, 0.75);
        assert!(
            cs.iter().any(|c| c.bot == "BrightEdge Crawler" && c.promise == RobotsPromise::Yes),
            "BrightEdge should appear among promise-breakers: {cs:?}"
        );
    }

    #[test]
    fn perplexity_pattern_detected() {
        // PerplexityBot says No but complies with crawl delay (~0.93)
        // and endpoint (~0.90).
        let cs = contradictions(experiment(), 0.25, 0.75);
        assert!(
            cs.iter().any(|c| c.bot == "PerplexityBot" && c.promise == RobotsPromise::No),
            "PerplexityBot should appear among surprise-compliers: {cs:?}"
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn threshold_order_enforced() {
        let _ = contradictions(experiment(), 0.9, 0.1);
    }

    #[test]
    fn render_smoke() {
        let text = render(experiment());
        assert!(text.contains("Promise"));
        assert!(text.contains("Contradictions"));
    }
}

//! User-agent spoofing detection (paper §5.2).
//!
//! "We develop an empirical heuristic that if a bot's traffic is
//! associated ≥90 % of the time with one ASN, other ASNs associated with
//! this user agent are likely spoofed." The detector takes a per-bot
//! record set, finds the dominant ASN, and — when dominance clears the
//! threshold and minority networks exist — flags every minority-network
//! request as possibly spoofed.

use std::collections::BTreeMap;

use botscope_weblog::intern::Sym;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::{LogTable, RecordRow};

/// The paper's dominance threshold.
pub const DOMINANCE_THRESHOLD: f64 = 0.90;

/// Minimum observations before a bot enters the dominance analysis.
pub const MIN_DETECT_REQUESTS: u64 = 10;

/// Detection result for one bot.
#[derive(Debug, Clone, PartialEq)]
pub struct SpoofFinding {
    /// Canonical bot name (or raw user agent when unstandardized).
    pub bot: String,
    /// The dominant ASN.
    pub main_asn: String,
    /// Share of traffic from the dominant ASN.
    pub main_share: f64,
    /// Minority ASNs with their request counts, descending by count then
    /// name (deterministic).
    pub suspicious: Vec<(String, u64)>,
    /// Total requests observed for the bot.
    pub total_requests: u64,
    /// Requests flagged as possibly spoofed.
    pub spoofed_requests: u64,
}

/// Whole-dataset spoofing report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpoofReport {
    /// One finding per flagged bot, sorted by name.
    pub findings: Vec<SpoofFinding>,
}

impl SpoofReport {
    /// The finding for a bot, if flagged.
    pub fn finding_for(&self, bot: &str) -> Option<&SpoofFinding> {
        self.findings.iter().find(|f| f.bot == bot)
    }

    /// Total flagged requests across all bots.
    pub fn total_spoofed(&self) -> u64 {
        self.findings.iter().map(|f| f.spoofed_requests).sum()
    }
}

/// Analyze one bot's records under the dominance heuristic.
///
/// Returns `None` when the bot is not flagged: fewer than `min_requests`
/// observations, a single ASN, or dominance below `threshold`.
pub fn analyze_bot(
    bot: &str,
    records: &[&AccessRecord],
    threshold: f64,
    min_requests: u64,
) -> Option<SpoofFinding> {
    assert!((0.0..=1.0).contains(&threshold), "threshold {threshold} not a probability");
    let total = records.len() as u64;
    if total < min_requests {
        return None;
    }
    let mut per_asn: BTreeMap<&str, u64> = BTreeMap::new();
    for r in records {
        *per_asn.entry(r.asn.as_str()).or_default() += 1;
    }
    if per_asn.len() < 2 {
        return None;
    }
    let (&main_asn, &main_count) = per_asn
        .iter()
        .max_by_key(|&(name, &count)| (count, std::cmp::Reverse(name)))
        .expect("non-empty");
    let main_share = main_count as f64 / total as f64;
    if main_share < threshold {
        return None;
    }
    let mut suspicious: Vec<(String, u64)> = per_asn
        .iter()
        .filter(|&(&name, _)| name != main_asn)
        .map(|(&name, &count)| (name.to_string(), count))
        .collect();
    suspicious.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let spoofed_requests = suspicious.iter().map(|&(_, c)| c).sum();
    Some(SpoofFinding {
        bot: bot.to_string(),
        main_asn: main_asn.to_string(),
        main_share,
        suspicious,
        total_requests: total,
        spoofed_requests,
    })
}

/// Analyze a per-bot partition of the dataset with the paper's threshold
/// and a minimum of 10 observations per bot.
pub fn detect(per_bot: &BTreeMap<String, Vec<&AccessRecord>>) -> SpoofReport {
    detect_with(per_bot, DOMINANCE_THRESHOLD, MIN_DETECT_REQUESTS)
}

/// [`detect`] with explicit parameters (the §5.2 limitations call the 90 %
/// threshold "somewhat arbitrary"; the ablation bench sweeps it here).
pub fn detect_with(
    per_bot: &BTreeMap<String, Vec<&AccessRecord>>,
    threshold: f64,
    min_requests: u64,
) -> SpoofReport {
    let mut findings: Vec<SpoofFinding> = per_bot
        .iter()
        .filter_map(|(bot, records)| analyze_bot(bot, records, threshold, min_requests))
        .collect();
    findings.sort_by(|a, b| a.bot.cmp(&b.bot));
    SpoofReport { findings }
}

/// Partition one bot's records into (legitimate, possibly-spoofed) using a
/// finding.
pub fn split_records<'a>(
    finding: &SpoofFinding,
    records: &[&'a AccessRecord],
) -> (Vec<&'a AccessRecord>, Vec<&'a AccessRecord>) {
    records.iter().partition(|r| r.asn == finding.main_asn)
}

// ---------------------------------------------------------------------
// Row-native detection (the interned hot path).
// ---------------------------------------------------------------------

/// Row-native [`analyze_bot`]: per-ASN counts are keyed by symbol, and
/// names are resolved only for the finding itself.
pub fn analyze_bot_rows(
    table: &LogTable,
    bot: &str,
    rows: &[&RecordRow],
    threshold: f64,
    min_requests: u64,
) -> Option<SpoofFinding> {
    assert!((0.0..=1.0).contains(&threshold), "threshold {threshold} not a probability");
    let total = rows.len() as u64;
    if total < min_requests {
        return None;
    }
    use std::collections::HashMap;
    let mut per_asn: HashMap<Sym, u64> = HashMap::new();
    for r in rows {
        *per_asn.entry(r.asn).or_default() += 1;
    }
    if per_asn.len() < 2 {
        return None;
    }
    let (&main_asn, &main_count) = per_asn
        .iter()
        .max_by_key(|&(&sym, &count)| (count, std::cmp::Reverse(table.resolve(sym))))
        .expect("non-empty");
    let main_share = main_count as f64 / total as f64;
    if main_share < threshold {
        return None;
    }
    let mut suspicious: Vec<(String, u64)> = per_asn
        .iter()
        .filter(|&(&sym, _)| sym != main_asn)
        .map(|(&sym, &count)| (table.resolve(sym).to_string(), count))
        .collect();
    suspicious.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let spoofed_requests = suspicious.iter().map(|&(_, c)| c).sum();
    Some(SpoofFinding {
        bot: bot.to_string(),
        main_asn: table.resolve(main_asn).to_string(),
        main_share,
        suspicious,
        total_requests: total,
        spoofed_requests,
    })
}

/// Row-native [`detect`] over a per-bot partition of a table.
pub fn detect_rows(table: &LogTable, per_bot: &BTreeMap<String, Vec<&RecordRow>>) -> SpoofReport {
    detect_rows_with(table, per_bot, DOMINANCE_THRESHOLD, MIN_DETECT_REQUESTS)
}

/// [`detect_rows`] with explicit parameters.
pub fn detect_rows_with(
    table: &LogTable,
    per_bot: &BTreeMap<String, Vec<&RecordRow>>,
    threshold: f64,
    min_requests: u64,
) -> SpoofReport {
    let mut findings: Vec<SpoofFinding> = per_bot
        .iter()
        .filter_map(|(bot, rows)| analyze_bot_rows(table, bot, rows, threshold, min_requests))
        .collect();
    findings.sort_by(|a, b| a.bot.cmp(&b.bot));
    SpoofReport { findings }
}

/// Row-native [`split_records`].
pub fn split_rows<'t>(
    finding: &SpoofFinding,
    table: &LogTable,
    rows: &[&'t RecordRow],
) -> (Vec<&'t RecordRow>, Vec<&'t RecordRow>) {
    match table.interner().get(&finding.main_asn) {
        Some(main) => rows.iter().partition(|r| r.asn == main),
        // The main ASN never occurs in this table: everything is minority.
        None => (Vec::new(), rows.to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_weblog::time::Timestamp;

    fn rec(asn: &str, t: u64) -> AccessRecord {
        AccessRecord {
            useragent: "bot".into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: asn.into(),
            sitename: "s".into(),
            uri_path: "/".into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    fn refs(v: &[AccessRecord]) -> Vec<&AccessRecord> {
        v.iter().collect()
    }

    #[test]
    fn dominant_with_minority_is_flagged() {
        let mut rs: Vec<AccessRecord> = (0..95).map(|t| rec("GOOGLE", t)).collect();
        rs.push(rec("M247", 100));
        rs.push(rec("M247", 101));
        rs.push(rec("PROSPERO-AS", 102));
        let f = analyze_bot("Googlebot", &refs(&rs), 0.9, 10).expect("flagged");
        assert_eq!(f.main_asn, "GOOGLE");
        assert!(f.main_share > 0.9);
        assert_eq!(f.spoofed_requests, 3);
        assert_eq!(f.suspicious[0], ("M247".to_string(), 2));
        assert_eq!(f.suspicious[1], ("PROSPERO-AS".to_string(), 1));
    }

    #[test]
    fn single_asn_not_flagged() {
        let rs: Vec<AccessRecord> = (0..50).map(|t| rec("GOOGLE", t)).collect();
        assert!(analyze_bot("b", &refs(&rs), 0.9, 10).is_none());
    }

    #[test]
    fn balanced_traffic_not_flagged() {
        let mut rs: Vec<AccessRecord> = (0..50).map(|t| rec("GOOGLE", t)).collect();
        rs.extend((0..50).map(|t| rec("AMAZON-02", 100 + t)));
        assert!(analyze_bot("b", &refs(&rs), 0.9, 10).is_none());
    }

    #[test]
    fn few_requests_not_flagged() {
        let rs = vec![rec("GOOGLE", 0), rec("M247", 1)];
        assert!(analyze_bot("b", &refs(&rs), 0.9, 10).is_none());
        // But allowed with min_requests 1.
        assert!(analyze_bot("b", &refs(&rs), 0.5, 1).is_some());
    }

    #[test]
    fn threshold_boundary() {
        // Exactly 90%: 90 of 100.
        let mut rs: Vec<AccessRecord> = (0..90).map(|t| rec("A", t)).collect();
        rs.extend((0..10).map(|t| rec("B", 1000 + t)));
        assert!(analyze_bot("b", &refs(&rs), 0.9, 10).is_some(), "90% meets ≥90%");
        // 89 of 100 does not.
        let mut rs: Vec<AccessRecord> = (0..89).map(|t| rec("A", t)).collect();
        rs.extend((0..11).map(|t| rec("B", 1000 + t)));
        assert!(analyze_bot("b", &refs(&rs), 0.9, 10).is_none());
    }

    #[test]
    fn split_partitions_correctly() {
        let mut rs: Vec<AccessRecord> = (0..95).map(|t| rec("GOOGLE", t)).collect();
        rs.push(rec("M247", 100));
        let all = refs(&rs);
        let f = analyze_bot("b", &all, 0.9, 10).unwrap();
        let (legit, spoofed) = split_records(&f, &all);
        assert_eq!(legit.len(), 95);
        assert_eq!(spoofed.len(), 1);
        assert_eq!(spoofed[0].asn, "M247");
    }

    #[test]
    fn report_totals() {
        let mut per_bot: BTreeMap<String, Vec<&AccessRecord>> = BTreeMap::new();
        let a: Vec<AccessRecord> =
            (0..95).map(|t| rec("GOOGLE", t)).chain([rec("M247", 99)]).collect();
        let b: Vec<AccessRecord> = (0..20).map(|t| rec("OVH", t)).collect();
        per_bot.insert("flagged".into(), a.iter().collect());
        per_bot.insert("clean".into(), b.iter().collect());
        let report = detect(&per_bot);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.total_spoofed(), 1);
        assert!(report.finding_for("flagged").is_some());
        assert!(report.finding_for("clean").is_none());
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn bad_threshold_panics() {
        let _ = analyze_bot("b", &[], 1.5, 1);
    }

    #[test]
    fn row_detection_matches_record_detection() {
        let mut rs: Vec<AccessRecord> = (0..95).map(|t| rec("GOOGLE", t)).collect();
        rs.push(rec("M247", 100));
        rs.push(rec("M247", 101));
        rs.push(rec("PROSPERO-AS", 102));
        let table = LogTable::from_records(&rs);
        let row_refs: Vec<&RecordRow> = table.rows().iter().collect();

        let by_rows = analyze_bot_rows(&table, "Googlebot", &row_refs, 0.9, 10).expect("flagged");
        let by_records = analyze_bot("Googlebot", &refs(&rs), 0.9, 10).expect("flagged");
        assert_eq!(by_rows, by_records);

        let (legit, spoofed) = split_rows(&by_rows, &table, &row_refs);
        assert_eq!(legit.len(), 95);
        assert_eq!(spoofed.len(), 3);

        let mut per_bot: BTreeMap<String, Vec<&RecordRow>> = BTreeMap::new();
        per_bot.insert("Googlebot".into(), row_refs);
        let report = detect_rows(&table, &per_bot);
        assert_eq!(report.findings, vec![by_records]);
    }

    #[test]
    fn split_rows_with_foreign_main_asn() {
        let rs = vec![rec("OVH", 0), rec("OVH", 1)];
        let table = LogTable::from_records(&rs);
        let row_refs: Vec<&RecordRow> = table.rows().iter().collect();
        let finding = SpoofFinding {
            bot: "b".into(),
            main_asn: "NOT-PRESENT".into(),
            main_share: 1.0,
            suspicious: vec![],
            total_requests: 2,
            spoofed_requests: 0,
        };
        let (legit, spoofed) = split_rows(&finding, &table, &row_refs);
        assert!(legit.is_empty());
        assert_eq!(spoofed.len(), 2);
    }
}

//! The three compliance metrics of paper §4.2.
//!
//! **The τ-tuple** (normative definition — every stratification in this
//! workspace refers here): the paper groups accesses "into sets of
//! accesses associated with a unique triple τᵢ = (ASN, IP hash,
//! user-agent)", where the user agent is the **raw** header string, not
//! the canonical bot name. Two raw UA variants of one bot (say
//! `GPTBot/1.1` and `GPTBot/1.2`) are distinct clients with independent
//! pacing; pooling them would measure deltas between unrelated request
//! streams and systematically understate crawl-delay compliance.
//!
//! All three metrics reduce to a success/trial count so they can feed
//! the pooled two-proportion z-test directly:
//!
//! * **crawl delay** — stratify a bot's accesses by the τ-tuple; within
//!   each τ sort by time and test each inter-access delta against the
//!   30-second requirement; a τ with a single access counts as one
//!   compliant delta (the paper: "we count this as an instance of
//!   compliance");
//! * **endpoint access** — per user agent, the fraction of accesses that
//!   hit an allowed target: `/robots.txt` (always permitted) or
//!   `/page-data/*`;
//! * **disallow** — per user agent, the fraction of accesses that hit
//!   `/robots.txt`, the only permitted target under full denial.

use botscope_weblog::intern::Sym;
use botscope_weblog::record::AccessRecord;
use botscope_weblog::table::{LogTable, RecordRow};

/// A success/trial pair; the unit every metric returns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectiveCounts {
    /// Compliant observations.
    pub successes: u64,
    /// Total observations.
    pub trials: u64,
}

impl DirectiveCounts {
    /// Compliance ratio; `None` when there are no trials.
    pub fn ratio(&self) -> Option<f64> {
        if self.trials == 0 {
            None
        } else {
            Some(self.successes as f64 / self.trials as f64)
        }
    }

    /// Merge two counts.
    pub fn merge(&mut self, other: DirectiveCounts) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// As a `(successes, trials)` tuple for the z-test API.
    pub fn as_tuple(&self) -> (u64, u64) {
        (self.successes, self.trials)
    }
}

/// The crawl-delay requirement of the paper's v1 file, in seconds.
pub const CRAWL_DELAY_SECS: u64 = 30;

/// Crawl-delay compliance for a record set, stratified by the full
/// (ASN, IP hash, raw user agent) τ-tuple exactly as §4.2 prescribes
/// (see the module docs for the normative definition).
///
/// Callers typically pass one *canonical bot*'s records; since a
/// canonical bot pools raw UA variants, the raw agent stays part of the
/// key here so variants never share a τ group. Records may be unsorted.
pub fn crawl_delay_counts(records: &[&AccessRecord], delay_secs: u64) -> DirectiveCounts {
    use std::collections::BTreeMap;
    let mut by_tau: BTreeMap<(&str, u64, &str), Vec<u64>> = BTreeMap::new();
    for r in records {
        by_tau.entry(r.tau_ref()).or_default().push(r.timestamp.unix());
    }
    let mut counts = DirectiveCounts::default();
    for (_, mut times) in by_tau {
        times.sort_unstable();
        if times.len() == 1 {
            // Single access: counted as compliant.
            counts.successes += 1;
            counts.trials += 1;
            continue;
        }
        for pair in times.windows(2) {
            let delta = pair[1] - pair[0];
            counts.trials += 1;
            if delta >= delay_secs {
                counts.successes += 1;
            }
        }
    }
    counts
}

/// Endpoint-access compliance: allowed targets are `/robots.txt` and the
/// `/page-data/` prefix (paper §4.2, v2 analysis).
pub fn endpoint_counts(records: &[&AccessRecord]) -> DirectiveCounts {
    let mut counts = DirectiveCounts::default();
    for r in records {
        counts.trials += 1;
        if r.is_robots_fetch() || r.uri_path.starts_with("/page-data/") {
            counts.successes += 1;
        }
    }
    counts
}

/// Disallow compliance: the only allowed target is `/robots.txt`
/// (paper §4.2, v3 analysis).
pub fn disallow_counts(records: &[&AccessRecord]) -> DirectiveCounts {
    let mut counts = DirectiveCounts::default();
    for r in records {
        counts.trials += 1;
        if r.is_robots_fetch() {
            counts.successes += 1;
        }
    }
    counts
}

// ---------------------------------------------------------------------
// Row-native metrics (the interned hot path).
// ---------------------------------------------------------------------

/// Per-symbol path classification, computed once per table so the
/// row-native metrics never touch a string.
#[derive(Debug, Clone)]
pub struct PathClasses {
    flags: Vec<u8>,
}

impl PathClasses {
    const ROBOTS: u8 = 1;
    const PAGE_DATA: u8 = 2;

    /// Classify every interned string of `table` (non-path symbols
    /// simply get no flags).
    pub fn new(table: &LogTable) -> PathClasses {
        let flags = table
            .interner()
            .iter()
            .map(|(_, s)| {
                let mut f = 0u8;
                if s == "/robots.txt" {
                    f |= Self::ROBOTS;
                }
                if s.starts_with("/page-data/") {
                    f |= Self::PAGE_DATA;
                }
                f
            })
            .collect();
        PathClasses { flags }
    }

    /// Whether the symbol is exactly `/robots.txt`.
    pub fn is_robots(&self, path: Sym) -> bool {
        self.flags[path.index()] & Self::ROBOTS != 0
    }

    /// Whether the symbol starts with `/page-data/`.
    pub fn is_page_data(&self, path: Sym) -> bool {
        self.flags[path.index()] & Self::PAGE_DATA != 0
    }
}

/// Row-native [`crawl_delay_counts`]: the (ASN, IP hash, raw user
/// agent) τ-stratification keyed by symbols instead of strings.
pub fn crawl_delay_counts_rows(rows: &[&RecordRow], delay_secs: u64) -> DirectiveCounts {
    use std::collections::HashMap;
    let mut by_tau: HashMap<(Sym, u64, Sym), Vec<u64>> = HashMap::new();
    for r in rows {
        by_tau.entry((r.asn, r.ip_hash, r.useragent)).or_default().push(r.timestamp.unix());
    }
    let mut counts = DirectiveCounts::default();
    for (_, mut times) in by_tau {
        times.sort_unstable();
        if times.len() == 1 {
            // Single access: counted as compliant.
            counts.successes += 1;
            counts.trials += 1;
            continue;
        }
        for pair in times.windows(2) {
            let delta = pair[1] - pair[0];
            counts.trials += 1;
            if delta >= delay_secs {
                counts.successes += 1;
            }
        }
    }
    counts
}

/// Row-native [`endpoint_counts`].
pub fn endpoint_counts_rows(classes: &PathClasses, rows: &[&RecordRow]) -> DirectiveCounts {
    let mut counts = DirectiveCounts::default();
    for r in rows {
        counts.trials += 1;
        if classes.is_robots(r.uri_path) || classes.is_page_data(r.uri_path) {
            counts.successes += 1;
        }
    }
    counts
}

/// Row-native [`disallow_counts`].
pub fn disallow_counts_rows(classes: &PathClasses, rows: &[&RecordRow]) -> DirectiveCounts {
    let mut counts = DirectiveCounts::default();
    for r in rows {
        counts.trials += 1;
        if classes.is_robots(r.uri_path) {
            counts.successes += 1;
        }
    }
    counts
}

/// Convenience: group a table per raw user agent and compute crawl-delay
/// counts for each (used by the ablation bench).
pub fn crawl_delay_by_useragent(
    table: &LogTable,
    delay_secs: u64,
) -> Vec<(String, DirectiveCounts)> {
    table
        .by_useragent()
        .into_iter()
        .map(|(ua, rows)| (ua.to_string(), crawl_delay_counts_rows(&rows, delay_secs)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_weblog::time::Timestamp;

    fn rec(ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: "bot".into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: ip,
            asn: "GOOGLE".into(),
            sitename: "s".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    #[test]
    fn crawl_delay_counting() {
        // One τ, deltas 40 and 10: one compliant of two.
        let rs = [rec(1, 0, "/a"), rec(1, 40, "/b"), rec(1, 50, "/c")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = crawl_delay_counts(&refs, 30);
        assert_eq!(c, DirectiveCounts { successes: 1, trials: 2 });
        assert_eq!(c.ratio(), Some(0.5));
    }

    #[test]
    fn single_access_is_compliant() {
        let rs = [rec(1, 0, "/a")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = crawl_delay_counts(&refs, 30);
        assert_eq!(c, DirectiveCounts { successes: 1, trials: 1 });
        assert_eq!(c.ratio(), Some(1.0));
    }

    #[test]
    fn tau_stratification_separates_ips() {
        // Two IPs interleaved in time. Pooled naively the deltas would be
        // tiny; stratified each IP is slow and fully compliant — the
        // paper's reason for τ-tuples.
        let rs = [rec(1, 0, "/a"), rec(2, 5, "/a"), rec(1, 60, "/b"), rec(2, 65, "/b")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = crawl_delay_counts(&refs, 30);
        assert_eq!(c, DirectiveCounts { successes: 2, trials: 2 });
    }

    #[test]
    fn exact_threshold_counts_as_compliant() {
        let rs = [rec(1, 0, "/a"), rec(1, 30, "/b")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        assert_eq!(crawl_delay_counts(&refs, 30).ratio(), Some(1.0));
        let rs = [rec(1, 0, "/a"), rec(1, 29, "/b")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        assert_eq!(crawl_delay_counts(&refs, 30).ratio(), Some(0.0));
    }

    #[test]
    fn endpoint_metric() {
        let rs = [
            rec(1, 0, "/robots.txt"),
            rec(1, 1, "/page-data/x/page-data.json"),
            rec(1, 2, "/news/item-001"),
            rec(1, 3, "/page-data-fake"), // prefix must include the slash
        ];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = endpoint_counts(&refs);
        assert_eq!(c, DirectiveCounts { successes: 2, trials: 4 });
    }

    #[test]
    fn disallow_metric() {
        let rs = [rec(1, 0, "/robots.txt"), rec(1, 1, "/a"), rec(1, 2, "/b")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = disallow_counts(&refs);
        assert_eq!(c, DirectiveCounts { successes: 1, trials: 3 });
        assert!((c.ratio().unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let empty: Vec<&AccessRecord> = vec![];
        assert_eq!(crawl_delay_counts(&empty, 30).trials, 0);
        assert_eq!(endpoint_counts(&empty).trials, 0);
        assert_eq!(disallow_counts(&empty).ratio(), None);
    }

    #[test]
    fn merge_and_tuple() {
        let mut a = DirectiveCounts { successes: 1, trials: 2 };
        a.merge(DirectiveCounts { successes: 3, trials: 4 });
        assert_eq!(a.as_tuple(), (4, 6));
    }

    #[test]
    fn row_metrics_match_record_metrics() {
        let records = vec![
            rec(1, 0, "/robots.txt"),
            rec(1, 40, "/page-data/x/page-data.json"),
            rec(1, 50, "/news/item-001"),
            rec(2, 5, "/page-data-fake"),
            rec(2, 65, "/a"),
        ];
        let table = LogTable::from_records(&records);
        let classes = PathClasses::new(&table);
        let row_refs: Vec<&RecordRow> = table.rows().iter().collect();
        let rec_refs: Vec<&AccessRecord> = records.iter().collect();

        assert_eq!(crawl_delay_counts_rows(&row_refs, 30), crawl_delay_counts(&rec_refs, 30));
        assert_eq!(endpoint_counts_rows(&classes, &row_refs), endpoint_counts(&rec_refs));
        assert_eq!(disallow_counts_rows(&classes, &row_refs), disallow_counts(&rec_refs));

        let empty_rows: Vec<&RecordRow> = vec![];
        assert_eq!(crawl_delay_counts_rows(&empty_rows, 30).trials, 0);
        assert_eq!(endpoint_counts_rows(&classes, &empty_rows).ratio(), None);
    }

    #[test]
    fn by_useragent_helper() {
        let table = LogTable::from_records(&[rec(1, 0, "/a"), rec(1, 100, "/b")]);
        let per_ua = crawl_delay_by_useragent(&table, 30);
        assert_eq!(per_ua.len(), 1);
        assert_eq!(per_ua[0].0, "bot");
        assert_eq!(per_ua[0].1.ratio(), Some(1.0));
    }

    /// A raw-UA variant of [`rec`]: same ASN and IP, different agent
    /// string.
    fn rec_ua(ua: &str, ip: u64, t: u64, path: &str) -> AccessRecord {
        AccessRecord { useragent: ua.into(), ..rec(ip, t, path) }
    }

    #[test]
    fn tau_stratification_separates_raw_ua_variants() {
        // Two UA variants of one canonical bot, same ASN and IP,
        // interleaved 5 s apart. Pooled under (ASN, IP) alone the deltas
        // would be 5 s (non-compliant); stratified by the full τ-tuple
        // each variant is its own slow, fully compliant client.
        let rs = [
            rec_ua("GPTBot/1.1", 1, 0, "/a"),
            rec_ua("GPTBot/1.2", 1, 5, "/a"),
            rec_ua("GPTBot/1.1", 1, 60, "/b"),
            rec_ua("GPTBot/1.2", 1, 65, "/b"),
        ];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        let c = crawl_delay_counts(&refs, 30);
        assert_eq!(c, DirectiveCounts { successes: 2, trials: 2 });

        // The row path stratifies identically.
        let table = LogTable::from_records(&rs);
        let row_refs: Vec<&RecordRow> = table.rows().iter().collect();
        assert_eq!(crawl_delay_counts_rows(&row_refs, 30), c);
    }

    #[test]
    fn single_access_ua_variants_each_count_once() {
        // One access per variant on a shared ASN/IP: two single-access τ
        // groups, each counted as one compliant instance.
        let rs = [rec_ua("GPTBot/1.1", 1, 0, "/a"), rec_ua("GPTBot/1.2", 1, 1, "/a")];
        let refs: Vec<&AccessRecord> = rs.iter().collect();
        assert_eq!(crawl_delay_counts(&refs, 30), DirectiveCounts { successes: 2, trials: 2 });
        let table = LogTable::from_records(&rs);
        let row_refs: Vec<&RecordRow> = table.rows().iter().collect();
        assert_eq!(
            crawl_delay_counts_rows(&row_refs, 30),
            DirectiveCounts { successes: 2, trials: 2 }
        );
    }
}

//! Adaptation-speed analysis (extension).
//!
//! The study's §4.1 names a second goal — "measuring how quickly scrapers
//! adapted to new robots.txt restrictions" — and its §6 warns that
//! robots.txt edits "would not be noticed by the scraper for significant
//! time". This module quantifies that: for every bot and every phase
//! flip, the **awareness lag** — the time from the new file going live to
//! the bot's first robots.txt fetch under it — and per-category medians.

use std::collections::BTreeMap;

use botscope_stats::describe::percentile;
use botscope_useragent::BotCategory;

use botscope_simnet::phases::{PhaseSchedule, PolicyVersion};

use crate::pipeline::StandardizedLogs;

/// One bot's awareness lag for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AwarenessLag {
    /// Canonical bot name.
    pub bot: String,
    /// Category.
    pub category: BotCategory,
    /// The phase that went live.
    pub version: PolicyVersion,
    /// Seconds from phase start to the bot's first robots.txt fetch in
    /// the phase; `None` if it never fetched the file during the phase —
    /// the bot spent the whole deployment on stale (or no) policy.
    pub lag_secs: Option<u64>,
}

/// Compute awareness lags for every known bot and every scheduled phase.
///
/// Lags use estate-wide robots.txt fetches (a bot that refreshed any of
/// the institution's policy files demonstrably re-consulted policy).
pub fn awareness_lags(logs: &StandardizedLogs<'_>, schedule: &PhaseSchedule) -> Vec<AwarenessLag> {
    let mut out = Vec::new();
    for view in logs.bots.values() {
        let mut checks: Vec<u64> = view
            .records
            .iter()
            .filter(|r| r.is_robots_fetch())
            .map(|r| r.timestamp.unix())
            .collect();
        checks.sort_unstable();
        for phase in &schedule.phases {
            let first =
                checks.iter().find(|&&t| t >= phase.start.unix() && t < phase.end.unix()).copied();
            out.push(AwarenessLag {
                bot: view.name.clone(),
                category: view.category,
                version: phase.version,
                lag_secs: first.map(|t| t - phase.start.unix()),
            });
        }
    }
    out
}

/// Per-category adaptation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryAdaptation {
    /// Category.
    pub category: BotCategory,
    /// Median awareness lag in hours over (bot, phase) pairs that did
    /// re-check; `None` when no bot in the category ever re-checked.
    pub median_lag_hours: Option<f64>,
    /// Fraction of (bot, phase) pairs where the bot never saw the new
    /// file at all during its two-week deployment.
    pub never_saw_fraction: f64,
    /// Number of (bot, phase) observations.
    pub observations: usize,
}

/// Aggregate lags per category.
pub fn by_category(lags: &[AwarenessLag]) -> Vec<CategoryAdaptation> {
    let mut grouped: BTreeMap<BotCategory, Vec<&AwarenessLag>> = BTreeMap::new();
    for lag in lags {
        grouped.entry(lag.category).or_default().push(lag);
    }
    grouped
        .into_iter()
        .map(|(category, ls)| {
            let seen: Vec<f64> =
                ls.iter().filter_map(|l| l.lag_secs).map(|s| s as f64 / 3600.0).collect();
            let never = ls.iter().filter(|l| l.lag_secs.is_none()).count();
            CategoryAdaptation {
                category,
                median_lag_hours: percentile(&seen, 0.5),
                never_saw_fraction: never as f64 / ls.len() as f64,
                observations: ls.len(),
            }
        })
        .collect()
}

/// Render the adaptation table.
pub fn render(categories: &[CategoryAdaptation]) -> String {
    use crate::tables::{f, TextTable};
    let mut t = TextTable::new(
        "Extension: how quickly do bots notice a new robots.txt? (awareness lag)",
        &["Category", "Median lag (hours)", "Never saw the file", "Observations"],
    );
    for c in categories {
        t.row(vec![
            c.category.name().to_string(),
            c.median_lag_hours.map_or_else(|| "never".into(), |h| f(h, 1)),
            format!("{:.0}%", c.never_saw_fraction * 100.0),
            c.observations.to_string(),
        ]);
    }
    t.render()
}

/// Convenience: lags for one bot across phases.
pub fn for_bot<'a>(lags: &'a [AwarenessLag], bot: &str) -> Vec<&'a AwarenessLag> {
    lags.iter().filter(|l| l.bot == bot).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::standardize;
    use botscope_simnet::phases::PhaseSchedule;
    use botscope_weblog::record::AccessRecord;
    use botscope_weblog::time::Timestamp;

    fn rec(ua: &str, t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: ua.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 1,
            asn: "GOOGLE".into(),
            sitename: "site-00.example.edu".into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    const DAY: u64 = 86_400;

    fn schedule() -> PhaseSchedule {
        PhaseSchedule::paper_schedule(Timestamp::from_unix(0), 0)
    }

    #[test]
    fn lag_is_time_to_first_check_in_phase() {
        // GPTBot checks robots 2 days into the v1 phase (phase 2 starts
        // at day 14).
        let records = vec![
            rec("Mozilla/5.0 (compatible; GPTBot/1.1)", DAY, "/robots.txt"),
            rec("Mozilla/5.0 (compatible; GPTBot/1.1)", 16 * DAY, "/robots.txt"),
        ];
        let logs = standardize(&records);
        let lags = awareness_lags(&logs, &schedule());
        let gpt = for_bot(&lags, "GPTBot");
        assert_eq!(gpt.len(), 4);
        assert_eq!(gpt[0].lag_secs, Some(DAY)); // base phase
        assert_eq!(gpt[1].lag_secs, Some(2 * DAY)); // v1 phase
        assert_eq!(gpt[2].lag_secs, None); // never during v2
        assert_eq!(gpt[3].lag_secs, None); // never during v3
    }

    #[test]
    fn never_checker_has_all_none() {
        let records = vec![rec("axios/1.6.2", DAY, "/page"), rec("axios/1.6.2", 20 * DAY, "/x")];
        let logs = standardize(&records);
        let lags = awareness_lags(&logs, &schedule());
        assert!(for_bot(&lags, "Axios").iter().all(|l| l.lag_secs.is_none()));
    }

    #[test]
    fn category_aggregation() {
        let records = vec![
            // SemrushBot (SEO): checks 6h into every phase.
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 6 * 3600, "/robots.txt"),
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 14 * DAY + 6 * 3600, "/robots.txt"),
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 28 * DAY + 6 * 3600, "/robots.txt"),
            rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 42 * DAY + 6 * 3600, "/robots.txt"),
            // Axios (Other): never.
            rec("axios/1.6.2", DAY, "/page"),
        ];
        let logs = standardize(&records);
        let lags = awareness_lags(&logs, &schedule());
        let cats = by_category(&lags);
        let seo = cats.iter().find(|c| c.category == BotCategory::SeoCrawler).unwrap();
        assert_eq!(seo.median_lag_hours, Some(6.0));
        assert_eq!(seo.never_saw_fraction, 0.0);
        let other = cats.iter().find(|c| c.category == BotCategory::Other).unwrap();
        assert_eq!(other.median_lag_hours, None);
        assert_eq!(other.never_saw_fraction, 1.0);
    }

    #[test]
    fn render_has_all_categories() {
        let records = vec![rec("Mozilla/5.0 (compatible; SemrushBot/7~bl)", 100, "/robots.txt")];
        let logs = standardize(&records);
        let lags = awareness_lags(&logs, &schedule());
        let text = render(&by_category(&lags));
        assert!(text.contains("SEO Crawlers"));
        assert!(text.contains("Median lag"));
    }
}

//! Ground-truth-aware compliance scoring: believed vs served policy,
//! with per-bot violation attribution.
//!
//! The schedule-driven analysis treats every disallowed fetch as
//! non-compliance. With the belief layer
//! ([`botscope_simnet::belief`]) the question splits in two:
//!
//! * **served** — was the fetch allowed under the policy the site was
//!   *actually* serving at that instant (outage windows resolved per
//!   RFC 9309)?
//! * **believed** — was it allowed under the policy the bot's last
//!   robots.txt fetch *entitled it to assume*?
//!
//! Every served-policy violation then attributes to exactly one cause:
//!
//! * **deliberate** — the bot's own believed policy forbade the fetch
//!   too (it knew), or the bot never consulted robots.txt at all
//!   (choosing ignorance is not an excuse);
//! * **stale cache** — the bot's cached *document* allowed the fetch;
//!   the site had swapped files since. An artifact of re-check cadence,
//!   not defiance;
//! * **fetch artifact** — the bot's last fetch resolved 4xx (or a
//!   redirect chain past the hop budget), entitling it to crawl without
//!   restriction while the served file said otherwise.
//!
//! This is the attribution gap that makes mislabelled non-compliance
//! legally and ethically fraught (*The Liabilities of Robots.txt*,
//! arXiv:2503.06035): a scraper crawling through a disallow on a stale
//! cache is operating exactly as RFC 9309 permits.
//!
//! **Execution shape.** [`attribute_table`] and [`score_table`] fan out
//! per-bot stages over `std::thread::scope` workers with a
//! deterministic bot-name merge, exactly as
//! [`Experiment::analyze_table`](crate::analyze::Experiment::analyze_table)
//! does. Timelines are stepwise and log rows arrive in chronological
//! order, so per-(bot, site) [`TimelineCursor`]s replace the per-row
//! binary searches with amortized-O(1) forward steps. The original
//! serial binary-search code survives as
//! [`attribute_table_reference`]/[`score_table_reference`], pinned
//! against the parallel path by the `attribution_equiv` proptests.
//!
//! **Granularity caveat.** Scoring is per access, at the access's own
//! instant — the only vantage point a log analyst has. The generation
//! engine, like a real crawler, applies one believed policy per crawl
//! *session*, so the handful of accesses between a mid-session belief
//! transition and the session's end are scored against a newer belief
//! than the one the bot acted on (and vice versa). Belief transitions
//! are sparse (a few dozen per (bot, site) over an 8-week horizon)
//! while sessions are minutes long, so the mislabelled tail is bounded
//! by pages-per-session per transition; the real-world analysis has
//! exactly the same ambiguity, because a bot's internal cache-refresh
//! timing is not observable from access logs.

use std::collections::{BTreeMap, HashMap};

use botscope_simnet::belief::{BeliefAtlas, BeliefTimeline, BelievedPolicy};
use botscope_simnet::engine::worker_threads;
use botscope_simnet::server::PolicyCorpus;
use botscope_useragent::Standardizer;
use botscope_weblog::intern::Sym;
use botscope_weblog::table::{LogTable, RecordRow};

use crate::metrics::DirectiveCounts;
use crate::pipeline::{run_indexed, standardize_table, standardize_table_with_threads, BotRowView};

/// Which policy a metric is computed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyBasis {
    /// The policy each bot believed (its own fetch history).
    Believed,
    /// The policy the site actually served (ground truth).
    Served,
}

/// Per-bot attribution of page accesses against served ground truth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttributionCounts {
    /// Page accesses examined (robots.txt fetches are always allowed
    /// and are not attribution targets).
    pub accesses: u64,
    /// Allowed under the served policy — no violation occurred.
    pub allowed_served: u64,
    /// Served violations committed knowingly: the believed policy
    /// forbade the fetch too, or the bot never fetched robots.txt.
    pub deliberate: u64,
    /// Served violations excused by a stale cached document.
    pub stale_cache: u64,
    /// Served violations excused by an RFC 9309 fetch-layer
    /// entitlement (4xx / over-budget redirect ⇒ allow all).
    pub fetch_artifact: u64,
    /// Accesses the bot's *own* believed policy forbade, regardless of
    /// what was served — the intent signal.
    pub believed_violations: u64,
}

impl AttributionCounts {
    /// Total served-policy violations.
    pub fn violations_served(&self) -> u64 {
        self.deliberate + self.stale_cache + self.fetch_artifact
    }

    /// Served violations the belief layer excuses (stale cache or
    /// fetch-layer entitlement) — the rows a believed-basis analysis
    /// drops from the non-compliant pool.
    pub fn excused(&self) -> u64 {
        self.stale_cache + self.fetch_artifact
    }

    /// Share of served violations that were deliberate (`None` with no
    /// violations).
    pub fn deliberate_share(&self) -> Option<f64> {
        let v = self.violations_served();
        if v == 0 {
            None
        } else {
            Some(self.deliberate as f64 / v as f64)
        }
    }

    /// Served-policy compliance ratio (`None` with no accesses).
    pub fn served_compliance(&self) -> Option<f64> {
        if self.accesses == 0 {
            None
        } else {
            Some(self.allowed_served as f64 / self.accesses as f64)
        }
    }

    /// Merge another bot-slice's counts.
    pub fn merge(&mut self, other: AttributionCounts) {
        self.accesses += other.accesses;
        self.allowed_served += other.allowed_served;
        self.deliberate += other.deliberate;
        self.stale_cache += other.stale_cache;
        self.fetch_artifact += other.fetch_artifact;
        self.believed_violations += other.believed_violations;
    }
}

/// A per-bot allow-decision cache: `allows` is pure in
/// `(policy, path)` for a fixed agent, and a run touches few distinct
/// pairs, so rows never re-evaluate the matcher.
struct AllowCache<'a> {
    corpus: &'a PolicyCorpus,
    agent: &'a str,
    memo: HashMap<(Sym, BelievedPolicy), bool>,
}

impl<'a> AllowCache<'a> {
    fn new(corpus: &'a PolicyCorpus, agent: &'a str) -> AllowCache<'a> {
        AllowCache { corpus, agent, memo: HashMap::new() }
    }

    fn allows(&mut self, table: &LogTable, policy: BelievedPolicy, path: Sym) -> bool {
        *self
            .memo
            .entry((path, policy))
            .or_insert_with(|| policy.allows(self.corpus, self.agent, table.resolve(path)))
    }
}

/// Map each interned sitename of `table` onto an estate index
/// (`site-NN.example.edu` → `NN`), for sites below `n_sites`.
fn site_index_of(table: &LogTable, n_sites: usize) -> Vec<Option<usize>> {
    let mut map = vec![None; table.interner().len()];
    for site in 0..n_sites {
        if let Some(sym) = table.interner().get(&format!("site-{site:02}.example.edu")) {
            map[sym.index()] = Some(site);
        }
    }
    map
}

// ---------------------------------------------------------------------
// Monotone timeline cursors.
// ---------------------------------------------------------------------

/// Amortized-O(1) stepwise-timeline lookup for time-ascending sweeps.
///
/// [`BeliefTimeline::at`] binary-searches its segment list on every
/// call. Log rows arrive in (near-)chronological order, so a cursor
/// that remembers its seat and only steps forward answers each lookup
/// in amortized O(1). A query earlier than the seated segment re-seats
/// by binary search and counts a reset — the τ-group crawl-delay sweep
/// rewinds once per group; the row sweep essentially never does.
struct TimelineCursor<'a> {
    segments: &'a [(u64, BelievedPolicy)],
    /// Index of the segment the last query landed in.
    idx: usize,
}

impl<'a> TimelineCursor<'a> {
    fn new(timeline: &'a BeliefTimeline) -> TimelineCursor<'a> {
        // Timelines always carry a segment from t=0, so index 0 is a
        // valid seat for any query.
        TimelineCursor { segments: timeline.segments(), idx: 0 }
    }

    /// The policy live at `t` — identical to [`BeliefTimeline::at`].
    fn at(&mut self, t: u64, stats: &mut SweepStats) -> BelievedPolicy {
        stats.lookups += 1;
        if self.segments[self.idx].0 > t {
            // Time ran backwards past the seated segment: re-seat.
            stats.resets += 1;
            self.idx = self.segments.partition_point(|&(from, _)| from <= t).saturating_sub(1);
        } else {
            while self.idx + 1 < self.segments.len() && self.segments[self.idx + 1].0 <= t {
                self.idx += 1;
            }
        }
        self.segments[self.idx].1
    }
}

/// One sweep's per-site cursors over a timeline family.
struct SiteCursors<'a> {
    cursors: Vec<TimelineCursor<'a>>,
}

impl<'a> SiteCursors<'a> {
    fn over_beliefs(beliefs: &'a BeliefAtlas, bot: usize, n_sites: usize) -> SiteCursors<'a> {
        SiteCursors {
            cursors: (0..n_sites).map(|s| TimelineCursor::new(beliefs.timeline(bot, s))).collect(),
        }
    }

    fn over_served(served: &'a [BeliefTimeline], n_sites: usize) -> SiteCursors<'a> {
        SiteCursors { cursors: served[..n_sites].iter().map(TimelineCursor::new).collect() }
    }

    fn at(&mut self, site: usize, t: u64, stats: &mut SweepStats) -> BelievedPolicy {
        self.cursors[site].at(t, stats)
    }
}

/// Telemetry accumulated by one sweep stage. Stages return their stats
/// and the caller merges them serially in bot-name order, so counter
/// totals are worker-count invariant.
#[derive(Debug, Clone, Copy)]
struct SweepStats {
    rows: u64,
    lookups: u64,
    resets: u64,
    event_lo: u64,
    event_hi: u64,
}

impl Default for SweepStats {
    fn default() -> SweepStats {
        SweepStats { rows: 0, lookups: 0, resets: 0, event_lo: u64::MAX, event_hi: 0 }
    }
}

impl SweepStats {
    fn observe_row(&mut self, t: u64) {
        self.rows += 1;
        self.event_lo = self.event_lo.min(t);
        self.event_hi = self.event_hi.max(t);
    }

    fn merge(&mut self, other: SweepStats) {
        self.rows += other.rows;
        self.lookups += other.lookups;
        self.resets += other.resets;
        self.event_lo = self.event_lo.min(other.event_lo);
        self.event_hi = self.event_hi.max(other.event_hi);
    }

    /// Flush into the global registry under a per-pass label.
    fn flush(&self, pass: &str) {
        let obs = botscope_obs::global();
        obs.counter(&format!("attribution_rows_total{{pass=\"{pass}\"}}")).add(self.rows);
        obs.counter(&format!("attribution_policy_lookups_total{{pass=\"{pass}\"}}"))
            .add(self.lookups);
        obs.counter(&format!("attribution_cursor_resets_total{{pass=\"{pass}\"}}"))
            .add(self.resets);
    }
}

// ---------------------------------------------------------------------
// Violation attribution.
// ---------------------------------------------------------------------

/// Attribute every fleet bot's page accesses in `table` against the
/// monitored beliefs and the served ground truth. Bots absent from the
/// atlas (anonymous traffic, unknown agents) and rows on sites outside
/// the estate are skipped; robots.txt fetches are always allowed and
/// not counted. Fans out over [`worker_threads`] scoped workers.
pub fn attribute_table(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
) -> BTreeMap<String, AttributionCounts> {
    attribute_table_with_threads(table, beliefs, served, corpus, worker_threads())
}

/// [`attribute_table`] with an explicit worker count: one stage per
/// bot over `std::thread::scope` workers, merged in bot-name order.
/// Output is identical at any worker count.
pub fn attribute_table_with_threads(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    threads: usize,
) -> BTreeMap<String, AttributionCounts> {
    let obs = botscope_obs::global();
    let mut span = obs.span("attribution_attribute_table");
    let logs = standardize_table_with_threads(table, threads);
    let robots = table.interner().get("/robots.txt");
    let n_sites = served.len().min(beliefs.n_sites());
    let site_of = site_index_of(table, n_sites);
    let bot_index: BTreeMap<&str, usize> =
        beliefs.bots.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    let views: Vec<&BotRowView<'_>> = logs.bots.values().collect();
    let results: Vec<Option<(AttributionCounts, SweepStats)>> =
        run_indexed(views.len(), threads, |i| {
            let view = views[i];
            let &bot = bot_index.get(view.name.as_str())?;
            Some(attribute_bot(table, view, bot, beliefs, served, corpus, robots, &site_of))
        });

    let mut stats = SweepStats::default();
    let mut out = BTreeMap::new();
    for (view, result) in views.iter().zip(results) {
        let Some((counts, bot_stats)) = result else {
            continue;
        };
        stats.merge(bot_stats);
        if counts.accesses > 0 {
            out.insert(view.name.clone(), counts);
        }
    }
    stats.flush("attribute");
    if stats.rows > 0 {
        span.event_range(stats.event_lo, stats.event_hi);
    }
    out
}

/// One bot's attribution sweep: rows are chronological, so the
/// per-(bot, site) cursors only step forward.
#[allow(clippy::too_many_arguments)]
fn attribute_bot(
    table: &LogTable,
    view: &BotRowView<'_>,
    bot: usize,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    robots: Option<Sym>,
    site_of: &[Option<usize>],
) -> (AttributionCounts, SweepStats) {
    let n_sites = served.len().min(beliefs.n_sites());
    let mut cache = AllowCache::new(corpus, &view.name);
    let mut believed_at = SiteCursors::over_beliefs(beliefs, bot, n_sites);
    let mut served_at = SiteCursors::over_served(served, n_sites);
    let mut counts = AttributionCounts::default();
    let mut stats = SweepStats::default();
    for row in &view.rows {
        if Some(row.uri_path) == robots {
            continue;
        }
        let Some(site) = site_of[row.sitename.index()] else {
            continue;
        };
        let t = row.timestamp.unix();
        stats.observe_row(t);
        let believed = believed_at.at(site, t, &mut stats);
        let served_policy = served_at.at(site, t, &mut stats);
        let allowed_believed = cache.allows(table, believed, row.uri_path);
        let allowed_served = cache.allows(table, served_policy, row.uri_path);

        counts.accesses += 1;
        if !allowed_believed {
            counts.believed_violations += 1;
        }
        if allowed_served {
            counts.allowed_served += 1;
            continue;
        }
        // A served-policy violation: attribute it.
        if !allowed_believed || believed == BelievedPolicy::Unfetched {
            counts.deliberate += 1;
        } else {
            match believed {
                BelievedPolicy::Version(_) => counts.stale_cache += 1,
                BelievedPolicy::AllowAll => counts.fetch_artifact += 1,
                // Unfetched handled above; DisallowAll allows only
                // robots.txt, so an allowed-believed page fetch
                // under it cannot exist.
                BelievedPolicy::Unfetched | BelievedPolicy::DisallowAll => {
                    unreachable!("allowed page fetch under {believed:?}")
                }
            }
        }
    }
    (counts, stats)
}

/// Serial binary-search reference for [`attribute_table`]: the original
/// single-threaded implementation with per-row [`BeliefTimeline::at`]
/// lookups, kept as an independently-written oracle for the
/// `attribution_equiv` proptests. Not a production path.
pub fn attribute_table_reference(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
) -> BTreeMap<String, AttributionCounts> {
    let logs = standardize_table(table);
    let robots = table.interner().get("/robots.txt");
    let site_of = site_index_of(table, served.len().min(beliefs.n_sites()));
    let bot_index: BTreeMap<&str, usize> =
        beliefs.bots.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    let mut out = BTreeMap::new();
    for view in logs.bots.values() {
        let Some(&bot) = bot_index.get(view.name.as_str()) else {
            continue;
        };
        let mut cache = AllowCache::new(corpus, &view.name);
        let mut counts = AttributionCounts::default();
        for row in &view.rows {
            if Some(row.uri_path) == robots {
                continue;
            }
            let Some(site) = site_of[row.sitename.index()] else {
                continue;
            };
            let t = row.timestamp.unix();
            let believed = beliefs.timeline(bot, site).at(t);
            let served_policy = served[site].at(t);
            let allowed_believed = cache.allows(table, believed, row.uri_path);
            let allowed_served = cache.allows(table, served_policy, row.uri_path);

            counts.accesses += 1;
            if !allowed_believed {
                counts.believed_violations += 1;
            }
            if allowed_served {
                counts.allowed_served += 1;
                continue;
            }
            if !allowed_believed || believed == BelievedPolicy::Unfetched {
                counts.deliberate += 1;
            } else {
                match believed {
                    BelievedPolicy::Version(_) => counts.stale_cache += 1,
                    BelievedPolicy::AllowAll => counts.fetch_artifact += 1,
                    BelievedPolicy::Unfetched | BelievedPolicy::DisallowAll => {
                        unreachable!("allowed page fetch under {believed:?}")
                    }
                }
            }
        }
        if counts.accesses > 0 {
            out.insert(view.name.clone(), counts);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Basis scoring.
// ---------------------------------------------------------------------

/// Believed- and served-basis compliance of one bot, in the §4.2
/// success/trial vocabulary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyScore {
    /// Allowed-target compliance: every access is a trial, successes
    /// are accesses the basis policy allowed (robots.txt fetches are
    /// always successes — cf. the disallow metric).
    pub allowed: DirectiveCounts,
    /// Crawl-delay compliance: τ-stratified inter-access deltas are
    /// trials only while the basis policy sets a crawl delay for the
    /// bot; successes are deltas meeting it.
    pub crawl_delay: DirectiveCounts,
}

/// Score every fleet bot's accesses against the believed or the served
/// policy — the generalization of the endpoint/disallow ("allowed
/// target") and crawl-delay metrics to arbitrary policy timelines.
/// Computing both bases and differencing them is the coupled analysis:
/// believed-basis compliance measures intent, served-basis compliance
/// measures effect. Fans out over [`worker_threads`] scoped workers.
pub fn score_table(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    basis: PolicyBasis,
) -> BTreeMap<String, PolicyScore> {
    score_table_with_threads(table, beliefs, served, corpus, basis, worker_threads())
}

/// [`score_table`] with an explicit worker count: per-bot stages,
/// bot-name merge, worker-count-invariant output.
pub fn score_table_with_threads(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    basis: PolicyBasis,
    threads: usize,
) -> BTreeMap<String, PolicyScore> {
    let obs = botscope_obs::global();
    let mut span = obs.span("attribution_score_table");
    let logs = standardize_table_with_threads(table, threads);
    let n_sites = served.len().min(beliefs.n_sites());
    let site_of = site_index_of(table, n_sites);
    let bot_index: BTreeMap<&str, usize> =
        beliefs.bots.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    let views: Vec<&BotRowView<'_>> = logs.bots.values().collect();
    let results: Vec<Option<(PolicyScore, SweepStats)>> = run_indexed(views.len(), threads, |i| {
        let view = views[i];
        let &bot = bot_index.get(view.name.as_str())?;
        Some(score_bot(table, view, bot, beliefs, served, corpus, basis, &site_of))
    });

    let mut stats = SweepStats::default();
    let mut out = BTreeMap::new();
    for (view, result) in views.iter().zip(results) {
        let Some((score, bot_stats)) = result else {
            continue;
        };
        stats.merge(bot_stats);
        if score.allowed.trials > 0 {
            out.insert(view.name.clone(), score);
        }
    }
    stats.flush("score");
    if stats.rows > 0 {
        span.event_range(stats.event_lo, stats.event_hi);
    }
    out
}

/// One bot's basis score. The row sweep is chronological (cursors step
/// forward); the crawl-delay pass walks τ groups in key order, each
/// group time-sorted, so the cursor re-seats at most once per group.
#[allow(clippy::too_many_arguments)]
fn score_bot(
    table: &LogTable,
    view: &BotRowView<'_>,
    bot: usize,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    basis: PolicyBasis,
    site_of: &[Option<usize>],
) -> (PolicyScore, SweepStats) {
    let n_sites = served.len().min(beliefs.n_sites());
    let mut basis_at = match basis {
        PolicyBasis::Believed => SiteCursors::over_beliefs(beliefs, bot, n_sites),
        PolicyBasis::Served => SiteCursors::over_served(served, n_sites),
    };
    let mut cache = AllowCache::new(corpus, &view.name);
    let mut score = PolicyScore::default();
    let mut stats = SweepStats::default();

    // Allowed-target metric, and τ-group collection in one sweep. The
    // grouping map is ordered so the crawl-delay pass below visits
    // groups deterministically (cursor-reset telemetry stays
    // worker-count and run-to-run invariant).
    let mut by_tau: BTreeMap<(usize, u64, usize), Vec<&RecordRow>> = BTreeMap::new();
    for &row in &view.rows {
        let Some(site) = site_of[row.sitename.index()] else {
            continue;
        };
        let t = row.timestamp.unix();
        stats.observe_row(t);
        let policy = basis_at.at(site, t, &mut stats);
        score.allowed.trials += 1;
        if cache.allows(table, policy, row.uri_path) {
            score.allowed.successes += 1;
        }
        by_tau.entry((row.asn.index(), row.ip_hash, row.useragent.index())).or_default().push(row);
    }

    // Crawl-delay under the basis policy: a delta is a trial only
    // when the policy live (on the later access's site, at its
    // instant) sets a delay for this bot; single-access τ groups
    // under a live delay count as one compliant instance, matching
    // the §4.2 convention.
    for rows in by_tau.values_mut() {
        rows.sort_by_key(|r| r.timestamp);
        if rows.len() == 1 {
            let row = rows[0];
            let site = site_of[row.sitename.index()].expect("filtered above");
            let policy = basis_at.at(site, row.timestamp.unix(), &mut stats);
            if policy.crawl_delay(corpus, &view.name).is_some() {
                score.crawl_delay.successes += 1;
                score.crawl_delay.trials += 1;
            }
            continue;
        }
        for pair in rows.windows(2) {
            let later = pair[1];
            let site = site_of[later.sitename.index()].expect("filtered above");
            let policy = basis_at.at(site, later.timestamp.unix(), &mut stats);
            let Some(required) = policy.crawl_delay(corpus, &view.name) else {
                continue;
            };
            let delta = later.timestamp.unix() - pair[0].timestamp.unix();
            score.crawl_delay.trials += 1;
            if delta as f64 >= required {
                score.crawl_delay.successes += 1;
            }
        }
    }
    (score, stats)
}

/// Serial binary-search reference for [`score_table`]: the original
/// single-threaded implementation, kept as an independently-written
/// oracle for the `attribution_equiv` proptests. Not a production path.
pub fn score_table_reference(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    basis: PolicyBasis,
) -> BTreeMap<String, PolicyScore> {
    let logs = standardize_table(table);
    let site_of = site_index_of(table, served.len().min(beliefs.n_sites()));
    let bot_index: BTreeMap<&str, usize> =
        beliefs.bots.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    let mut out = BTreeMap::new();
    for view in logs.bots.values() {
        let Some(&bot) = bot_index.get(view.name.as_str()) else {
            continue;
        };
        let policy_at = |site: usize, t: u64| -> BelievedPolicy {
            match basis {
                PolicyBasis::Believed => beliefs.timeline(bot, site).at(t),
                PolicyBasis::Served => served[site].at(t),
            }
        };
        let mut cache = AllowCache::new(corpus, &view.name);
        let mut score = PolicyScore::default();

        let mut by_tau: HashMap<(Sym, u64, Sym), Vec<&RecordRow>> = HashMap::new();
        for &row in &view.rows {
            let Some(site) = site_of[row.sitename.index()] else {
                continue;
            };
            let policy = policy_at(site, row.timestamp.unix());
            score.allowed.trials += 1;
            if cache.allows(table, policy, row.uri_path) {
                score.allowed.successes += 1;
            }
            by_tau.entry((row.asn, row.ip_hash, row.useragent)).or_default().push(row);
        }

        let mut groups: Vec<Vec<&RecordRow>> = by_tau.into_values().collect();
        for rows in &mut groups {
            rows.sort_by_key(|r| r.timestamp);
            if rows.len() == 1 {
                let row = rows[0];
                let site = site_of[row.sitename.index()].expect("filtered above");
                let policy = policy_at(site, row.timestamp.unix());
                if policy.crawl_delay(corpus, &view.name).is_some() {
                    score.crawl_delay.successes += 1;
                    score.crawl_delay.trials += 1;
                }
                continue;
            }
            for pair in rows.windows(2) {
                let later = pair[1];
                let site = site_of[later.sitename.index()].expect("filtered above");
                let policy = policy_at(site, later.timestamp.unix());
                let Some(required) = policy.crawl_delay(corpus, &view.name) else {
                    continue;
                };
                let delta = later.timestamp.unix() - pair[0].timestamp.unix();
                score.crawl_delay.trials += 1;
                if delta as f64 >= required {
                    score.crawl_delay.successes += 1;
                }
            }
        }

        if score.allowed.trials > 0 {
            out.insert(view.name.clone(), score);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Row-level excusal mask (believed-basis analysis support).
// ---------------------------------------------------------------------

/// Per-row excusal verdicts against the served ground truth: `true`
/// marks a served-policy violation the belief layer excuses (stale
/// cache or fetch-layer entitlement) — exactly the rows a
/// believed-basis experiment analysis drops from the non-compliant
/// pool. Robots.txt fetches, anonymous rows, unmonitored bots, foreign
/// sites, allowed fetches, and deliberate violations are all `false`.
///
/// Verdicts are pure per row, so the mask is worker-count invariant;
/// the row grid is fixed (independent of `threads`) so cursor
/// telemetry is too.
pub fn excusal_mask(
    table: &LogTable,
    beliefs: &BeliefAtlas,
    served: &[BeliefTimeline],
    corpus: &PolicyCorpus,
    threads: usize,
) -> Vec<bool> {
    let rows = table.rows();
    let n = rows.len();
    let n_sites = served.len().min(beliefs.n_sites());
    let site_of = site_index_of(table, n_sites);
    let robots = table.interner().get("/robots.txt");
    let bot_index: BTreeMap<&str, usize> =
        beliefs.bots.iter().enumerate().map(|(i, name)| (name.as_str(), i)).collect();

    // Map each distinct user-agent symbol to its atlas bot (None =
    // anonymous or unmonitored), once.
    let standardizer = Standardizer::new();
    let mut bot_of: Vec<Option<usize>> = vec![None; table.interner().len()];
    let mut seen = vec![false; table.interner().len()];
    for row in rows {
        let idx = row.useragent.index();
        if !seen[idx] {
            seen[idx] = true;
            bot_of[idx] = standardizer
                .standardize(table.resolve(row.useragent))
                .and_then(|s| bot_index.get(s.bot.canonical).copied());
        }
    }

    // Contiguous row chunks: rows are chronological, so each chunk's
    // cursors sweep forward from a fresh seat.
    const CHUNK: usize = 1 << 16;
    let chunks = n.div_ceil(CHUNK).max(1);
    let parts: Vec<(Vec<bool>, SweepStats)> = run_indexed(chunks, threads, |c| {
        let lo = c * CHUNK;
        let hi = ((c + 1) * CHUNK).min(n);
        let mut stats = SweepStats::default();
        let mut caches: Vec<Option<AllowCache<'_>>> =
            (0..beliefs.bots.len()).map(|_| None).collect();
        let mut believed_cur: Vec<Option<SiteCursors<'_>>> =
            (0..beliefs.bots.len()).map(|_| None).collect();
        let mut served_cur = SiteCursors::over_served(served, n_sites);
        let mut mask = vec![false; hi - lo];
        for (slot, row) in rows[lo..hi].iter().enumerate() {
            let Some(bot) = bot_of[row.useragent.index()] else {
                continue;
            };
            if Some(row.uri_path) == robots {
                continue;
            }
            let Some(site) = site_of[row.sitename.index()] else {
                continue;
            };
            let t = row.timestamp.unix();
            stats.observe_row(t);
            let believed = believed_cur[bot]
                .get_or_insert_with(|| SiteCursors::over_beliefs(beliefs, bot, n_sites))
                .at(site, t, &mut stats);
            let served_policy = served_cur.at(site, t, &mut stats);
            let cache =
                caches[bot].get_or_insert_with(|| AllowCache::new(corpus, &beliefs.bots[bot]));
            let allowed_believed = cache.allows(table, believed, row.uri_path);
            if cache.allows(table, served_policy, row.uri_path) {
                continue;
            }
            mask[slot] = allowed_believed
                && matches!(believed, BelievedPolicy::Version(_) | BelievedPolicy::AllowAll);
        }
        (mask, stats)
    });

    let mut stats = SweepStats::default();
    let mut mask = Vec::with_capacity(n);
    for (part, part_stats) in parts {
        mask.extend(part);
        stats.merge(part_stats);
    }
    stats.flush("excusal");
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use botscope_simnet::PolicyVersion;
    use botscope_weblog::record::AccessRecord;
    use botscope_weblog::time::Timestamp;

    const GPT_UA: &str = "Mozilla/5.0 (compatible; GPTBot/1.1)";
    const SITE: &str = "site-00.example.edu";

    fn rec(t: u64, path: &str) -> AccessRecord {
        AccessRecord {
            useragent: GPT_UA.into(),
            timestamp: Timestamp::from_unix(t),
            ip_hash: 7,
            asn: "MICROSOFT-CORP".into(),
            sitename: SITE.into(),
            uri_path: path.into(),
            status: 200,
            bytes: 1,
            referer: None,
        }
    }

    fn atlas_with(timeline: BeliefTimeline) -> BeliefAtlas {
        let mut atlas = BeliefAtlas::new(vec!["GPTBot".into()], 1);
        *atlas.timeline_mut(0, 0) = timeline;
        atlas
    }

    fn v(version: PolicyVersion) -> BelievedPolicy {
        BelievedPolicy::Version(version)
    }

    #[test]
    fn cursor_matches_binary_search_everywhere() {
        let mut tl = BeliefTimeline::new();
        tl.record(100, v(PolicyVersion::Base));
        tl.record(500, BelievedPolicy::AllowAll);
        tl.record(900, v(PolicyVersion::V3DisallowAll));
        let mut stats = SweepStats::default();
        let mut cursor = TimelineCursor::new(&tl);
        // Forward sweep, then rewinds, then forward again.
        for t in [0, 99, 100, 499, 500, 901, 10, 500, 899, 2_000, 0] {
            assert_eq!(cursor.at(t, &mut stats), tl.at(t), "t={t}");
        }
        assert_eq!(stats.lookups, 11);
        assert!(stats.resets >= 2, "rewinds re-seat: {stats:?}");
    }

    #[test]
    fn stale_cache_crawl_is_an_artifact_not_a_violation() {
        // Served swaps Base → v3 at t=1000; the bot's belief stays at
        // the stale Base document throughout. Page fetches after the
        // swap violate the served policy but attribute to the stale
        // cache — zero deliberate violations.
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(v(PolicyVersion::Base)));
        let mut served_tl = BeliefTimeline::always(v(PolicyVersion::Base));
        served_tl.record(1_000, v(PolicyVersion::V3DisallowAll));
        let served = vec![served_tl];

        let records = vec![
            rec(100, "/news/item-001"),   // allowed under both
            rec(1_500, "/news/item-001"), // served v3 forbids, stale Base allows
            rec(1_600, "/news/item-002"),
            rec(1_700, "/robots.txt"), // never an attribution target
        ];
        let table = LogTable::from_records(&records);
        let out = attribute_table(&table, &beliefs, &served, &corpus);
        let c = out["GPTBot"];
        assert_eq!(c.accesses, 3);
        assert_eq!(c.allowed_served, 1);
        assert_eq!(c.stale_cache, 2, "{c:?}");
        assert_eq!(c.deliberate, 0);
        assert_eq!(c.fetch_artifact, 0);
        assert_eq!(c.believed_violations, 0, "its own belief allowed everything");
        assert_eq!(c.violations_served(), 2);
        assert_eq!(c.deliberate_share(), Some(0.0));

        // The excusal mask marks exactly the two stale-cache rows.
        let mask = excusal_mask(&table, &beliefs, &served, &corpus, 1);
        assert_eq!(mask, vec![false, true, true, false]);
    }

    #[test]
    fn believed_violations_are_deliberate() {
        // The bot's own belief is the v3 document (it fetched it!) and
        // it crawls pages anyway: deliberate, whatever is served.
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(v(PolicyVersion::V3DisallowAll)));
        let served = vec![BeliefTimeline::always(v(PolicyVersion::V3DisallowAll))];
        let records = vec![rec(10, "/news/item-001"), rec(20, "/people/person-0001")];
        let table = LogTable::from_records(&records);
        let c = attribute_table(&table, &beliefs, &served, &corpus)["GPTBot"];
        assert_eq!(c.deliberate, 2);
        assert_eq!(c.believed_violations, 2);
        assert_eq!(c.stale_cache + c.fetch_artifact, 0);
        assert_eq!(c.deliberate_share(), Some(1.0));
        // Deliberate violations are never excused.
        let mask = excusal_mask(&table, &beliefs, &served, &corpus, 1);
        assert_eq!(mask, vec![false, false]);
    }

    #[test]
    fn never_fetching_robots_is_deliberate() {
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::new()); // Unfetched forever
        let served = vec![BeliefTimeline::always(v(PolicyVersion::V3DisallowAll))];
        let table = LogTable::from_records(&[rec(10, "/news/item-001")]);
        let c = attribute_table(&table, &beliefs, &served, &corpus)["GPTBot"];
        assert_eq!(c.deliberate, 1, "choosing ignorance is not an excuse: {c:?}");
        assert_eq!(c.believed_violations, 0, "it believed nothing forbade it");
    }

    #[test]
    fn fetch_layer_entitlement_is_an_artifact() {
        // The bot's last robots.txt fetch resolved 4xx: RFC 9309 says
        // crawl without restriction. The served file forbids the path —
        // an artifact of the fetch layer, not defiance.
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(BelievedPolicy::AllowAll));
        let served = vec![BeliefTimeline::always(v(PolicyVersion::V3DisallowAll))];
        let table = LogTable::from_records(&[rec(10, "/news/item-001")]);
        let c = attribute_table(&table, &beliefs, &served, &corpus)["GPTBot"];
        assert_eq!(c.fetch_artifact, 1, "{c:?}");
        assert_eq!(c.deliberate, 0);
        let mask = excusal_mask(&table, &beliefs, &served, &corpus, 1);
        assert_eq!(mask, vec![true], "fetch artifacts are excused");
    }

    #[test]
    fn restricted_paths_violate_under_base_too() {
        // /secure/* is disallowed even by the Base file: a fetch there
        // with a fresh Base belief is deliberate under both bases.
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(v(PolicyVersion::Base)));
        let served = vec![BeliefTimeline::always(v(PolicyVersion::Base))];
        let table = LogTable::from_records(&[rec(10, "/secure/admin-0"), rec(20, "/about")]);
        let c = attribute_table(&table, &beliefs, &served, &corpus)["GPTBot"];
        assert_eq!(c.accesses, 2);
        assert_eq!(c.allowed_served, 1);
        assert_eq!(c.deliberate, 1);
        assert_eq!(c.believed_violations, 1);
    }

    #[test]
    fn score_bases_diverge_exactly_where_beliefs_do() {
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(v(PolicyVersion::Base)));
        let mut served_tl = BeliefTimeline::always(v(PolicyVersion::Base));
        served_tl.record(1_000, v(PolicyVersion::V3DisallowAll));
        let served = vec![served_tl];
        let records = vec![
            rec(100, "/news/item-001"),
            rec(1_500, "/news/item-001"),
            rec(1_600, "/robots.txt"),
        ];
        let table = LogTable::from_records(&records);

        let believed =
            score_table(&table, &beliefs, &served, &corpus, PolicyBasis::Believed)["GPTBot"];
        let served_score =
            score_table(&table, &beliefs, &served, &corpus, PolicyBasis::Served)["GPTBot"];
        // Believed basis: all three rows allowed (robots.txt always).
        assert_eq!(believed.allowed, DirectiveCounts { successes: 3, trials: 3 });
        // Served basis: the post-swap page fetch is a violation.
        assert_eq!(served_score.allowed, DirectiveCounts { successes: 2, trials: 3 });
        // No crawl delay in either policy: zero trials.
        assert_eq!(believed.crawl_delay.trials, 0);
        assert_eq!(served_score.crawl_delay.trials, 0);
    }

    #[test]
    fn crawl_delay_trials_only_while_delay_is_live() {
        let corpus = PolicyCorpus::new();
        // Served: v1 (30 s crawl delay) from t=1000 on; Base before.
        let mut served_tl = BeliefTimeline::always(v(PolicyVersion::Base));
        served_tl.record(1_000, v(PolicyVersion::V1CrawlDelay));
        let served = vec![served_tl.clone()];
        let beliefs = atlas_with(served_tl); // belief tracks served
        let records = vec![
            rec(0, "/a"),
            rec(5, "/b"),     // delta 5 under Base: no trial
            rec(1_100, "/c"), // delta 1095 under v1: compliant trial
            rec(1_110, "/d"), // delta 10 under v1: violating trial
        ];
        let table = LogTable::from_records(&records);
        let s = score_table(&table, &beliefs, &served, &corpus, PolicyBasis::Served)["GPTBot"];
        assert_eq!(s.crawl_delay, DirectiveCounts { successes: 1, trials: 2 }, "{s:?}");
        // A single access while the delay is live counts once.
        let table = LogTable::from_records(&[rec(2_000, "/a")]);
        let s = score_table(&table, &beliefs, &served, &corpus, PolicyBasis::Served)["GPTBot"];
        assert_eq!(s.crawl_delay, DirectiveCounts { successes: 1, trials: 1 });
    }

    #[test]
    fn unknown_agents_and_foreign_sites_are_skipped() {
        let corpus = PolicyCorpus::new();
        let beliefs = atlas_with(BeliefTimeline::always(v(PolicyVersion::Base)));
        let served = vec![BeliefTimeline::always(v(PolicyVersion::Base))];
        let mut records = vec![rec(10, "/about")];
        records.push(AccessRecord { useragent: "curl/8.0".into(), ..rec(20, "/about") });
        records.push(AccessRecord { sitename: "elsewhere.example.com".into(), ..rec(30, "/x") });
        let table = LogTable::from_records(&records);
        let out = attribute_table(&table, &beliefs, &served, &corpus);
        assert_eq!(out.len(), 1);
        assert_eq!(out["GPTBot"].accesses, 1);
        let mask = excusal_mask(&table, &beliefs, &served, &corpus, 2);
        assert_eq!(mask, vec![false, false, false]);
    }
}

//! # botscope-core
//!
//! The paper's primary contribution, as a library: a pipeline that
//! measures web-scraper compliance with `robots.txt` directives from
//! anonymized access logs, with the exact metrics, statistics and
//! confound analyses of *"Scrapers Selectively Respect robots.txt
//! Directives"* (IMC '25).
//!
//! The pipeline stages:
//!
//! 1. [`pipeline`] — standardize raw user agents to canonical bot names
//!    and categories (via `botscope-useragent`), producing per-bot views
//!    of a [`botscope_weblog::LogTable`];
//! 2. [`spoofdetect`] — the §5.2 heuristic: flag a bot's minority-network
//!    traffic when ≥90 % of it comes from one ASN; spoof-flagged records
//!    are excluded from the main compliance analysis and reported
//!    separately (Tables 8/9, Figure 11);
//! 3. [`metrics`] — the three §4.2 compliance metrics: crawl-delay ratio
//!    over τ-tuple-stratified inter-access deltas, endpoint-access ratio,
//!    and disallow ratio;
//! 4. [`analyze`] — the full experiment: slice the four deployment phases,
//!    compute baseline/experiment compliance per bot, run the paired
//!    two-proportion z-tests (Table 10), aggregate categories with
//!    access-weighted averages (Table 5);
//! 5. [`recheck`] — the §5.1 robots.txt re-check-frequency analysis
//!    (Table 7, Figure 10), including the monitored digest-window
//!    matrix ([`recheck::phase_check_matrix`]);
//! 6. [`attribution`] — ground-truth-aware scoring over the belief
//!    layer: every compliance metric against *believed* or *served*
//!    policy, and a per-bot split of served violations into deliberate
//!    / stale-cache / fetch-artifact;
//! 7. [`report`] — render every table and figure of the paper's
//!    evaluation from an analysis result.
//!
//! ```
//! use botscope_core::analyze::Experiment;
//! use botscope_simnet::SimConfig;
//!
//! // Small-scale end-to-end run: generate the 8-week phase study and
//! // measure compliance back out of it.
//! let cfg = SimConfig { scale: 0.02, sites: 4, ..SimConfig::default() };
//! let exp = Experiment::run(&cfg);
//! let table5 = exp.category_table();
//! assert!(!table5.rows.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptation;
pub mod analyze;
pub mod attribution;
pub mod honeypot;
pub mod metrics;
pub mod pipeline;
pub mod promise;
pub mod recheck;
pub mod report;
pub mod spoofdetect;
pub mod stream;
pub mod tables;

pub use analyze::{Directive, Experiment};
pub use attribution::{AttributionCounts, PolicyBasis, PolicyScore};
pub use metrics::DirectiveCounts;
pub use pipeline::BotView;
pub use spoofdetect::SpoofReport;
pub use stream::StreamAnalyzer;

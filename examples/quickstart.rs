//! Quickstart: parse a robots.txt file, ask access questions, build the
//! paper's experimental policies, and check a crawler's obligations.
//!
//! Run with: `cargo run --example quickstart`

use botscope::robots::{EffectivePolicy, FetchOutcome, RobotsTxt, RobotsTxtBuilder};

fn main() {
    // 1. Parse the file from the paper's Figure 1.
    let robots = RobotsTxt::parse(
        "User-agent: Googlebot\n\
         Allow: /\n\
         Crawl-delay: 15\n\
         \n\
         User-agent: *\n\
         Allow: /allowed-data/\n\
         Disallow: /restricted-data/\n\
         Crawl-delay: 30\n\
         \n\
         Sitemap: https://example.edu/sitemap/sitemap-0.xml\n",
    );

    println!(
        "Parsed {} groups, {} rules, {} sitemap(s)\n",
        robots.groups.len(),
        robots.rule_count(),
        robots.sitemaps().len()
    );

    // 2. Ask access questions for different crawlers.
    for (agent, path) in [
        ("Googlebot", "/restricted-data/report.pdf"),
        ("GPTBot", "/restricted-data/report.pdf"),
        ("GPTBot", "/allowed-data/catalog.json"),
        ("ClaudeBot", "/robots.txt"),
    ] {
        let decision = robots.is_allowed(agent, path);
        println!(
            "{agent:<10} {path:<32} -> {}{}",
            if decision.allow { "ALLOW" } else { "DENY " },
            match &decision.matched_rule {
                Some(rule) => format!("  (rule: {}: {})", rule.verb.as_str(), rule.pattern),
                None => "  (no matching rule; default allow)".to_string(),
            }
        );
    }

    // 3. Crawl-delay obligations.
    println!();
    for agent in ["Googlebot", "GPTBot"] {
        println!("{agent:<10} crawl delay: {:?} seconds", robots.crawl_delay(agent));
    }

    // 4. Build a policy programmatically (the paper's v3 disallow-all).
    let v3 = RobotsTxtBuilder::new()
        .group(["Googlebot"], |g| g.allow("/").disallow("/secure/*"))
        .group(["*"], |g| g.disallow("/"))
        .build();
    println!("\nGenerated v3-style policy:\n{v3}");

    // 5. RFC 9309 fetch semantics: what must a compliant crawler assume?
    for (label, outcome) in [
        ("robots.txt returns 404", FetchOutcome::ClientError(404)),
        ("robots.txt returns 503", FetchOutcome::ServerError(503)),
    ] {
        let policy = EffectivePolicy::from_outcome(outcome);
        println!("{label}: may fetch /anything? {}", policy.is_allowed("anybot", "/anything"));
    }
}

//! Spoof hunt: run the §5.2 ASN-dominance heuristic over the passive
//! study's logs and validate the findings against the generator's planted
//! ground truth — the closed loop that replaces access to the paper's raw
//! data.
//!
//! Run with: `cargo run --release --example spoof_hunt`

use std::collections::BTreeSet;

use botscope::asn::catalog::SPOOF_CATALOG;
use botscope::core::pipeline::standardize;
use botscope::core::spoofdetect::{detect_with, DOMINANCE_THRESHOLD};
use botscope::simnet::{scenario, SimConfig};

fn main() {
    let cfg = SimConfig { scale: 0.2, ..SimConfig::default() };
    println!("Generating 46 days of traffic across {} sites (seed {})...", cfg.sites, cfg.seed);
    let out = scenario::full_study(&cfg);
    println!(
        "{} records; {} bots have planted spoof traffic\n",
        out.records.len(),
        out.truth.spoofed_requests.len()
    );

    let logs = standardize(&out.records);
    let per_bot = logs.per_bot_records();

    // Run the paper's heuristic.
    let report = detect_with(&per_bot, DOMINANCE_THRESHOLD, 10);
    println!("{:<26} {:>7} {:>9}  suspicious ASNs", "flagged bot", "share", "spoofed");
    println!("{}", "-".repeat(70));
    for f in &report.findings {
        let asns: Vec<&str> = f.suspicious.iter().map(|(n, _)| n.as_str()).collect();
        println!(
            "{:<26} {:>6.1}% {:>9}  {}",
            f.bot,
            f.main_share * 100.0,
            f.spoofed_requests,
            asns.join(", ")
        );
    }

    // Score against ground truth.
    let planted: BTreeSet<&str> = out.truth.spoofed_requests.keys().map(|s| s.as_str()).collect();
    let flagged: BTreeSet<&str> = report.findings.iter().map(|f| f.bot.as_str()).collect();
    let hits = planted.intersection(&flagged).count();
    let missed: Vec<&&str> = planted.difference(&flagged).collect();
    let false_pos: Vec<&&str> = flagged.difference(&planted).collect();
    println!("\nGround truth: detected {hits}/{} planted spoof victims", planted.len());
    if !missed.is_empty() {
        println!("  missed (volume below the heuristic's radar): {missed:?}");
    }
    if !false_pos.is_empty() {
        println!("  false positives: {false_pos:?}");
    }

    // The §5.2 limitation: the threshold is arbitrary. Sweep it.
    println!("\nThreshold sweep (paper uses 0.90):");
    for threshold in [0.5, 0.75, 0.9, 0.99] {
        let n = detect_with(&per_bot, threshold, 10).findings.len();
        println!("  dominance >= {threshold:<4} -> {n} flagged bots");
    }

    // Which Table 8 rows does the detector rediscover?
    let table8: BTreeSet<&str> = SPOOF_CATALOG.iter().map(|p| p.bot).collect();
    let rediscovered = table8.intersection(&flagged).count();
    println!("\nPaper Table 8 rows rediscovered: {rediscovered}/{}", table8.len());
}

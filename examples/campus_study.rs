//! The paper's controlled experiment, end to end at laptop scale: deploy
//! four robots.txt versions of increasing strictness on the busiest site,
//! watch the fleet for eight simulated weeks, and measure which directives
//! bots actually honour.
//!
//! Run with: `cargo run --release --example campus_study`

use botscope::core::analyze::Directive;
use botscope::core::report;
use botscope::core::Experiment;
use botscope::simnet::SimConfig;

fn main() {
    let cfg = SimConfig { scale: 0.15, ..SimConfig::default() };
    println!(
        "Simulating the 8-week robots.txt experiment (seed {}, scale {})...\n",
        cfg.seed, cfg.scale
    );
    let exp = Experiment::run(&cfg);

    // Traffic stayed stable across deployments (paper Table 4).
    println!("{}", report::table4(&exp));

    // The headline result: compliance by category and directive.
    println!("{}", report::table5(&exp));

    // RQ1: which directive do bots comply with most?
    let t = exp.category_table();
    let avg = |d: Directive| t.directive_average.get(&d).copied().unwrap_or(f64::NAN);
    println!(
        "RQ1  Crawl delay {:.3}  >  Endpoint {:.3}  ~  Disallow {:.3}",
        avg(Directive::CrawlDelay),
        avg(Directive::Endpoint),
        avg(Directive::Disallow)
    );
    println!("     => bots are less likely to comply with stricter directives\n");

    // RQ2: which category is most compliant overall?
    if let Some((cat, _, best)) =
        t.rows.iter().max_by(|a, b| a.2.partial_cmp(&b.2).expect("no NaN"))
    {
        println!("RQ2  Most compliant category: {} (average {:.3})\n", cat.name(), best);
    }

    // RQ3: individual variation — the biggest significant movers.
    println!("RQ3  Largest significant compliance shifts (baseline -> experiment):");
    let mut movers: Vec<(String, &'static str, f64)> = Vec::new();
    for d in Directive::ALL {
        for r in &exp.per_directive[&d] {
            if r.significant() {
                if let Some(z) = &r.ztest {
                    movers.push((r.bot.clone(), d.label(), z.effect()));
                }
            }
        }
    }
    movers.sort_by(|a, b| b.2.abs().partial_cmp(&a.2.abs()).expect("no NaN"));
    for (bot, directive, shift) in movers.iter().take(10) {
        println!("     {bot:<24} {directive:<16} {shift:+.3}");
    }
}

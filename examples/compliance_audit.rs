//! Compliance audit: the workflow a site operator would run on their own
//! access logs — standardize user agents, compute per-bot compliance with
//! a crawl delay, and flag likely user-agent spoofing.
//!
//! The example generates a week of synthetic logs (stand-in for the
//! operator's real CSV export; swap in `botscope::weblog::codec::decode`
//! to load your own), then runs the audit.
//!
//! Run with: `cargo run --example compliance_audit`

use botscope::core::metrics::{crawl_delay_counts, CRAWL_DELAY_SECS};
use botscope::core::pipeline::standardize;
use botscope::core::spoofdetect::detect;
use botscope::simnet::{scenario, SimConfig};
use botscope::weblog::codec;

fn main() {
    // Stand-in for: let records = codec::decode(&std::fs::read_to_string("access.csv")?)?;
    let cfg = SimConfig { days: 7, scale: 0.05, sites: 8, ..SimConfig::default() };
    let records = scenario::full_study(&cfg).records;
    println!("Loaded {} access records", records.len());

    // Round-trip through the CSV codec to show the persistence path.
    let csv = codec::encode(&records[..100.min(records.len())]);
    let reloaded = codec::decode(&csv).expect("codec roundtrip");
    println!("CSV codec roundtrip: {} records re-read\n", reloaded.len());

    // 1. Standardize user agents against the known-bot corpus.
    let logs = standardize(&records);
    println!(
        "Known bots: {} ({} records); anonymous agents: {} records\n",
        logs.bots.len(),
        logs.known_bot_records(),
        logs.anonymous.len()
    );

    // 2. Per-bot crawl-delay compliance (would this bot honour a 30 s
    //    delay if we deployed one? Its current pacing is the base rate).
    println!("{:<28} {:>8} {:>12}", "Bot", "accesses", "pace>=30s");
    println!("{}", "-".repeat(52));
    let mut rows: Vec<(String, usize, f64)> = logs
        .bots
        .values()
        .filter(|v| v.records.len() >= 20)
        .map(|v| {
            let counts = crawl_delay_counts(&v.records, CRAWL_DELAY_SECS);
            (v.name.clone(), v.records.len(), counts.ratio().unwrap_or(0.0))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (name, n, ratio) in rows.iter().take(15) {
        println!("{name:<28} {n:>8} {ratio:>12.3}");
    }

    // 3. Spoofing scan: bots whose traffic is ≥90% one network but shows
    //    residual requests from elsewhere.
    let spoof = detect(&logs.per_bot_records());
    println!("\nPossible spoofing ({} bots flagged):", spoof.findings.len());
    for f in &spoof.findings {
        let asns: Vec<&str> = f.suspicious.iter().map(|(n, _)| n.as_str()).collect();
        println!(
            "  {:<24} main {} ({:.1}%), {} suspicious request(s) from {}",
            f.bot,
            f.main_asn,
            f.main_share * 100.0,
            f.spoofed_requests,
            asns.join(", ")
        );
    }
}

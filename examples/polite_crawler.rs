//! A compliant crawler built on the library's client-side pieces: the
//! robots.txt cache (24 h TTL), RFC 9309 fetch semantics, crawl-delay
//! pacing and per-path access checks — the behaviour the study's most
//! respectful bots exhibit.
//!
//! The "web server" is simulated locally so the example runs offline; the
//! crawler logic is exactly what a networked implementation would do.
//!
//! Run with: `cargo run --example polite_crawler`

use botscope::robots::{EffectivePolicy, FetchOutcome, RobotsCache};

/// A simulated origin: serves robots.txt (sometimes failing) and pages.
struct Origin {
    robots_body: &'static str,
    robots_status: u16,
}

impl Origin {
    fn fetch_robots(&self) -> FetchOutcome {
        match self.robots_status {
            200 => FetchOutcome::Success(self.robots_body.to_string()),
            s if (400..500).contains(&s) => FetchOutcome::ClientError(s),
            s => FetchOutcome::ServerError(s),
        }
    }
}

/// The crawler: checks the cache, fetches policy when stale, obeys
/// decisions and the crawl delay.
struct PoliteCrawler {
    agent: &'static str,
    cache: RobotsCache,
    last_fetch_at: Option<u64>,
    fetched: Vec<String>,
    refused: Vec<String>,
}

impl PoliteCrawler {
    fn new(agent: &'static str) -> Self {
        Self {
            agent,
            cache: RobotsCache::with_default_ttl(),
            last_fetch_at: None,
            fetched: Vec::new(),
            refused: Vec::new(),
        }
    }

    fn crawl(&mut self, origin: &Origin, path: &str, mut now: u64) -> u64 {
        // Refresh the policy if the cached copy is stale (24 h TTL).
        if self.cache.needs_fetch(now) {
            let policy = EffectivePolicy::from_outcome(origin.fetch_robots());
            println!("[t={now:>6}] {} refreshes robots.txt -> {policy:?}", self.agent);
            self.cache.store(now, policy);
        }
        let policy = self.cache.get(now).expect("just stored").clone();

        // Honour the crawl delay before the next page fetch.
        if let (Some(last), Some(delay)) = (self.last_fetch_at, policy.crawl_delay(self.agent)) {
            let due = last + delay as u64;
            if now < due {
                println!("[t={now:>6}] {} waits {}s (crawl delay {delay}s)", self.agent, due - now);
                now = due;
            }
        }

        if policy.is_allowed(self.agent, path) {
            println!("[t={now:>6}] {} GET {path}", self.agent);
            self.fetched.push(path.to_string());
            self.last_fetch_at = Some(now);
        } else {
            println!("[t={now:>6}] {} refuses {path} (disallowed)", self.agent);
            self.refused.push(path.to_string());
        }
        now + 1
    }
}

fn main() {
    // Scenario 1: the paper's v1 policy (crawl delay, some restricted paths).
    let origin = Origin {
        robots_body: "User-agent: *\nAllow: /\nDisallow: /secure/*\nCrawl-delay: 30\n",
        robots_status: 200,
    };
    let mut bot = PoliteCrawler::new("ExampleBot");
    let mut t = 0;
    for path in ["/", "/news/item-001", "/secure/admin", "/people/person-0001"] {
        t = bot.crawl(&origin, path, t);
    }
    println!("\nScenario 1: fetched {:?}, refused {:?}\n", bot.fetched, bot.refused);
    assert_eq!(bot.refused, vec!["/secure/admin"]);

    // Scenario 2: robots.txt is down (5xx) — RFC 9309 demands full stop.
    let broken = Origin { robots_body: "", robots_status: 503 };
    let mut bot = PoliteCrawler::new("ExampleBot");
    let t = bot.crawl(&broken, "/anything", 0);
    println!("\nScenario 2 (robots.txt 503): fetched {:?}, refused {:?}", bot.fetched, bot.refused);
    assert!(bot.fetched.is_empty(), "5xx means assume disallow-all");

    // Scenario 3: robots.txt missing (404) — crawl freely.
    let missing = Origin { robots_body: "", robots_status: 404 };
    let mut bot = PoliteCrawler::new("ExampleBot");
    bot.crawl(&missing, "/anything", t);
    println!("\nScenario 3 (robots.txt 404): fetched {:?}", bot.fetched);
    assert_eq!(bot.fetched, vec!["/anything"], "4xx means crawl without restriction");
}
